// end_to_end_test.cpp — whole-pipeline integration: catalog -> items ->
// allocation -> simulation -> reports, plus trace persistence round trips.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/normalize.h"
#include "core/pack_disks.h"
#include "core/random_alloc.h"
#include "core/reorganizer.h"
#include "sys/experiment.h"
#include "workload/catalog.h"
#include "workload/nersc.h"

namespace spindown {
namespace {

class ScaledPaperWorkload : public ::testing::Test {
protected:
  static constexpr std::size_t kFiles = 1500;
  static const workload::FileCatalog& catalog() {
    static const workload::FileCatalog cat = [] {
      workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
      spec.n_files = kFiles;
      util::Rng rng{1};
      return workload::generate_catalog(spec, rng);
    }();
    return cat;
  }
};

TEST_F(ScaledPaperWorkload, PackDisksBeatsRandomOnEnergy) {
  // The paper's headline: on a Zipf workload with spin-down disks, packing
  // hot files together saves substantial energy versus random placement.
  core::LoadModel model;
  model.rate = 1.0;
  model.load_fraction = 0.7;
  const auto items = core::normalize(catalog(), model);

  core::PackDisks pack;
  const auto packed = pack.allocate(items);
  const std::uint32_t farm = packed.disk_count * 3;
  core::RandomAllocator rnd{farm, 42};
  const auto random = rnd.allocate(items);

  auto run = [&](const core::Assignment& a) {
    sys::ExperimentConfig cfg;
    cfg.catalog = &catalog();
    cfg.mapping = a.disk_of;
    cfg.num_disks = farm;
    cfg.workload = sys::WorkloadSpec::poisson(model.rate, 2000.0);
    cfg.seed = 9;
    return sys::run_experiment(cfg);
  };
  const auto pack_run = run(packed);
  const auto rnd_run = run(random);

  EXPECT_LT(pack_run.power.energy, rnd_run.power.energy);
  // Shape check (Figure 2's low-R regime): the saving is substantial.
  const double saving = 1.0 - pack_run.power.energy / rnd_run.power.energy;
  EXPECT_GT(saving, 0.25);
  // Both served everything.
  EXPECT_EQ(pack_run.response.count(), pack_run.requests);
  EXPECT_EQ(rnd_run.response.count(), rnd_run.requests);
}

TEST_F(ScaledPaperWorkload, PackedDisksRespectLoadConstraint) {
  core::LoadModel model;
  model.rate = 1.5;
  model.load_fraction = 0.6;
  const auto items = core::normalize(catalog(), model);
  core::PackDisks pack;
  const auto a = pack.allocate(items);
  for (const auto& d : core::disk_totals(a, items)) {
    EXPECT_LE(d.s, 1.0 + 1e-9);
    EXPECT_LE(d.l, 1.0 + 1e-9);
  }
}

TEST(EndToEnd, NerscTraceRoundTripPreservesSimulation) {
  workload::NerscSpec spec;
  spec.n_files = 400;
  spec.n_requests = 700;
  spec.duration_s = 40'000.0;
  const auto trace = workload::synthesize_nersc(spec);

  const auto stem = std::filesystem::temp_directory_path() / "e2e_nersc";
  trace.save(stem);
  const auto loaded = workload::Trace::load(stem);
  std::filesystem::remove(stem.string() + ".catalog.csv");
  std::filesystem::remove(stem.string() + ".trace.csv");

  auto run = [](const workload::Trace& t) {
    core::LoadModel model;
    model.rate = std::max(0.01, static_cast<double>(t.size()) / t.duration());
    model.load_fraction = 0.8;
    const auto items = core::normalize(t.catalog(), model);
    core::PackDisks pack;
    const auto a = pack.allocate(items);
    sys::ExperimentConfig cfg;
    cfg.catalog = &t.catalog();
    cfg.mapping = a.disk_of;
    cfg.num_disks = a.disk_count;
    cfg.workload = sys::WorkloadSpec::replay(t);
    return sys::run_experiment(cfg);
  };
  const auto original = run(trace);
  const auto replayed = run(loaded);
  EXPECT_EQ(original.requests, replayed.requests);
  // Timestamps survive the CSV round trip with ~1e-6 precision; allow a
  // small relative energy slack.
  EXPECT_NEAR(original.power.energy, replayed.power.energy,
              original.power.energy * 1e-6);
}

TEST(EndToEnd, ReorganizerImprovesAfterPopularityDrift) {
  // Build a catalog, pack it, observe a drifted workload window, re-pack;
  // the new plan should dedicate fewer disks to the (now cold) files.
  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = 600;
  util::Rng rng{3};
  auto catalog = workload::generate_catalog(spec, rng);

  core::LoadModel model;
  model.rate = 0.5;
  model.load_fraction = 0.8;
  core::PackDisks pack;
  const auto before = pack.allocate(core::normalize(catalog, model));

  // Observed window: popularity reversed (the cold tail became hot).
  std::vector<std::uint64_t> counts(600);
  for (std::size_t i = 0; i < 600; ++i) {
    counts[i] = 1 + (i * 997) % 50; // varied, uncorrelated with before
  }
  core::Reorganizer reorg{model};
  const auto plan = reorg.plan(catalog, counts, 10'000.0, before);
  EXPECT_GT(plan.disks_after, 0u);
  EXPECT_FALSE(plan.moved.empty());
  // The relabeling keeps the majority of bytes in place relative to a naive
  // identity labeling... at minimum it must not move *everything*.
  EXPECT_LT(plan.moved.size(), catalog.size());
}

} // namespace
} // namespace spindown
