// maid_system_test.cpp — MAID placement driven through the full system:
// cache disks pinned always-on via policy overrides, data disks sleeping.
#include <gtest/gtest.h>

#include "core/maid.h"
#include "sys/experiment.h"
#include "util/units.h"
#include "workload/catalog.h"

namespace spindown {
namespace {

workload::FileCatalog zipf_catalog(std::size_t n) {
  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = n;
  util::Rng rng{21};
  return workload::generate_catalog(spec, rng);
}

class MaidSystem : public ::testing::Test {
protected:
  sys::RunResult run_maid(const workload::FileCatalog& cat,
                          const core::MaidPlacement& maid, double rate,
                          double horizon) {
    sys::ExperimentConfig cfg;
    cfg.catalog = &cat;
    cfg.mapping = maid.mapping;
    cfg.num_disks = maid.total_disks;
    for (std::uint32_t d = 0; d < maid.cache_disks; ++d) {
      cfg.policy_overrides.emplace_back(d, sys::PolicySpec::never());
    }
    cfg.workload = sys::WorkloadSpec::poisson(rate, horizon);
    cfg.seed = 9;
    return sys::run_experiment(cfg);
  }
};

TEST_F(MaidSystem, CacheDisksNeverSpinDown) {
  const auto cat = zipf_catalog(800);
  const auto maid =
      core::build_maid(cat, 2, 8, disk::DiskParams::st3500630as().capacity);
  const auto r = run_maid(cat, maid, 0.2, 3000.0);

  // Cache disks (0, 1) must never enter standby; their spin-down counters
  // stay at zero.
  for (std::uint32_t d = 0; d < 2; ++d) {
    EXPECT_EQ(r.per_disk[d].spin_downs, 0u) << "cache disk " << d;
    EXPECT_DOUBLE_EQ(r.per_disk[d].time_in(disk::PowerState::kStandby), 0.0);
  }
  // With a Zipf head absorbed by the cache, at least one data disk slept.
  std::uint64_t data_spin_downs = 0;
  for (std::uint32_t d = 2; d < r.per_disk.size(); ++d) {
    data_spin_downs += r.per_disk[d].spin_downs;
  }
  EXPECT_GT(data_spin_downs, 0u);
}

TEST_F(MaidSystem, CacheAbsorbsTheHead) {
  const auto cat = zipf_catalog(800);
  const auto maid =
      core::build_maid(cat, 2, 8, disk::DiskParams::st3500630as().capacity);
  const auto r = run_maid(cat, maid, 0.2, 3000.0);

  // Requests served by the cache disks should be close to the placement's
  // cached popularity mass.
  std::uint64_t cache_served = 0, total_served = 0;
  for (std::uint32_t d = 0; d < r.per_disk.size(); ++d) {
    total_served += r.per_disk[d].served;
    if (d < maid.cache_disks) cache_served += r.per_disk[d].served;
  }
  ASSERT_GT(total_served, 100u);
  const double cache_share =
      static_cast<double>(cache_served) / static_cast<double>(total_served);
  EXPECT_NEAR(cache_share, maid.cached_popularity, 0.05);
}

TEST_F(MaidSystem, MoreCacheDisksMoreSaving) {
  // MAID's knob: adding cache disks concentrates more of the head, letting
  // more data disks sleep — up to the replication space cost.
  const auto cat = zipf_catalog(800);
  const auto params = disk::DiskParams::st3500630as();
  const auto no_cache = core::build_maid(cat, 0, 8, params.capacity);
  const auto with_cache = core::build_maid(cat, 2, 8, params.capacity);
  const auto r0 = run_maid(cat, no_cache, 0.2, 3000.0);
  const auto r2 = run_maid(cat, with_cache, 0.2, 3000.0);
  // Energy on the *data* subset should drop when the cache absorbs reads.
  double data0 = 0.0, data2 = 0.0;
  for (std::uint32_t d = 0; d < r0.per_disk.size(); ++d) {
    data0 += r0.per_disk[d].energy(params);
  }
  for (std::uint32_t d = with_cache.cache_disks; d < r2.per_disk.size(); ++d) {
    data2 += r2.per_disk[d].energy(params);
  }
  EXPECT_LT(data2, data0);
}

} // namespace
} // namespace spindown
