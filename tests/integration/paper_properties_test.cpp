// paper_properties_test.cpp — directional claims of the paper's evaluation,
// asserted on scaled-down workloads so they run in CI time:
//
//   * §6: "power saving decreases with arrival rates and increases with
//     higher allowable constraints on disk loads."
//   * §5.1: batched same-size requests hurt Pack_Disks; Pack_Disks_v
//     disperses them.
//   * Figure 5's normalization: saving relative to always-on is in [0, 1].
#include <gtest/gtest.h>

#include "core/normalize.h"
#include "core/pack_disks.h"
#include "core/pack_grouped.h"
#include "sys/experiment.h"
#include "sys/sweep.h"
#include "workload/catalog.h"
#include "workload/nersc.h"

namespace spindown {
namespace {

const workload::FileCatalog& scaled_catalog() {
  static const workload::FileCatalog cat = [] {
    workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
    spec.n_files = 1200;
    util::Rng rng{7};
    return workload::generate_catalog(spec, rng);
  }();
  return cat;
}

sys::RunResult run_packed(double rate, double load_fraction,
                          std::uint32_t farm, double horizon) {
  core::LoadModel model;
  model.rate = rate;
  model.load_fraction = load_fraction;
  const auto items = core::normalize(scaled_catalog(), model);
  core::PackDisks pack;
  const auto a = pack.allocate(items);
  sys::ExperimentConfig cfg;
  cfg.catalog = &scaled_catalog();
  cfg.mapping = a.disk_of;
  cfg.num_disks = std::max(farm, a.disk_count);
  cfg.workload = sys::WorkloadSpec::poisson(rate, horizon);
  cfg.seed = 17;
  return sys::run_experiment(cfg);
}

TEST(PaperProperties, SavingDecreasesWithArrivalRate) {
  // Figure 2's trend: more load -> more spinning disks -> less saving.
  const auto low = run_packed(0.3, 0.7, 40, 1500.0);
  const auto high = run_packed(2.5, 0.7, 40, 1500.0);
  EXPECT_GT(low.power.saving_vs_always_on,
            high.power.saving_vs_always_on + 0.05);
}

TEST(PaperProperties, HigherLoadConstraintUsesFewerDisks) {
  // Figure 4's left axis: raising L packs tighter, so fewer disks spin.
  core::LoadModel model;
  model.rate = 1.0;
  core::PackDisks pack;
  model.load_fraction = 0.4;
  const auto disks_low_l =
      pack.allocate(core::normalize(scaled_catalog(), model)).disk_count;
  model.load_fraction = 0.9;
  const auto disks_high_l =
      pack.allocate(core::normalize(scaled_catalog(), model)).disk_count;
  EXPECT_LT(disks_high_l, disks_low_l);
}

TEST(PaperProperties, HigherLoadConstraintRaisesResponseTime) {
  // Figure 4's right axis: tighter packing -> longer queues.
  const auto loose = run_packed(1.0, 0.4, 0, 1500.0);
  const auto tight = run_packed(1.0, 0.95, 0, 1500.0);
  EXPECT_LE(tight.power.average_power, loose.power.average_power);
  EXPECT_GT(tight.response.mean(), loose.response.mean());
}

TEST(PaperProperties, SavingAlwaysInUnitInterval) {
  for (double rate : {0.3, 1.0, 2.0}) {
    const auto r = run_packed(rate, 0.7, 30, 800.0);
    EXPECT_GE(r.power.saving_vs_always_on, 0.0) << rate;
    EXPECT_LE(r.power.saving_vs_always_on, 1.0) << rate;
  }
}

TEST(PaperProperties, GroupedPackingDispersesBatches) {
  // Batch-heavy NERSC-like trace: Pack_Disks_4 must cut the tail response
  // time relative to Pack_Disks (the §3.2/§5.1 motivation for the variant).
  workload::NerscSpec spec;
  spec.n_files = 800;
  spec.n_requests = 2400;
  spec.duration_s = 36'000.0; // dense 10-hour window
  spec.batch_fraction = 0.5;  // strongly batchy
  spec.batch_min = 6;
  spec.batch_max = 10;
  spec.mean_size = util::mb(544.0);
  const auto trace = workload::synthesize_nersc(spec);

  core::LoadModel model;
  model.rate = static_cast<double>(spec.n_requests) / spec.duration_s;
  model.load_fraction = 0.8;
  const auto items = core::normalize(trace.catalog(), model);

  auto run_with = [&](core::Allocator& alloc) {
    const auto a = alloc.allocate(items);
    sys::ExperimentConfig cfg;
    cfg.catalog = &trace.catalog();
    cfg.mapping = a.disk_of;
    cfg.num_disks = a.disk_count;
    cfg.workload = sys::WorkloadSpec::replay(trace);
    return sys::run_experiment(cfg);
  };
  core::PackDisks v1;
  core::PackDisksGrouped v4{4};
  const auto r1 = run_with(v1);
  const auto r4 = run_with(v4);
  // Dispersion must help the upper tail of response times.
  EXPECT_LT(r4.response.p95(), r1.response.p95());
}

TEST(PaperProperties, ShortThresholdSavesMorePowerButSlower) {
  // Figures 5/6's joint trend on a sparse workload: lowering the idleness
  // threshold saves power and inflates response times.
  workload::NerscSpec spec;
  spec.n_files = 300;
  spec.n_requests = 600;
  spec.duration_s = 100'000.0;
  const auto trace = workload::synthesize_nersc(spec);

  core::LoadModel model;
  model.rate = 0.01;
  model.load_fraction = 0.8;
  const auto items = core::normalize(trace.catalog(), model);
  core::PackDisks pack;
  const auto a = pack.allocate(items);

  auto run_with_threshold = [&](double threshold) {
    sys::ExperimentConfig cfg;
    cfg.catalog = &trace.catalog();
    cfg.mapping = a.disk_of;
    cfg.num_disks = a.disk_count;
    cfg.policy = sys::PolicySpec::fixed(threshold);
    cfg.workload = sys::WorkloadSpec::replay(trace);
    return sys::run_experiment(cfg);
  };
  const auto eager = run_with_threshold(10.0);
  const auto lazy = run_with_threshold(3600.0);
  EXPECT_LT(eager.power.energy, lazy.power.energy);
  EXPECT_GE(eager.response.mean(), lazy.response.mean());
  EXPECT_GT(eager.power.spin_downs, lazy.power.spin_downs);
}

} // namespace
} // namespace spindown
