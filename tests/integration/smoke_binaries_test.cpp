// smoke_binaries_test.cpp — build-surface smoke test.
//
// Asserts that every bench and example binary produced by this build exits 0
// when invoked with --help, and that the quickstart example completes a tiny
// end-to-end simulation.  The binary directories and names are injected by
// tests/CMakeLists.txt at configure time.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss{csv};
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// Runs a command line, discarding stdout, and returns the process exit
// status (or -1 if it could not be spawned / died on a signal).
int run(const std::string& command) {
  const std::string quiet = command + " > /dev/null 2>&1";
  const int raw = std::system(quiet.c_str());
  if (raw == -1) return -1;
#if defined(WIFEXITED)
  if (!WIFEXITED(raw)) return -1;
  return WEXITSTATUS(raw);
#else
  return raw;
#endif
}

class SmokeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SmokeTest, HelpExitsZero) {
  const std::string& path = GetParam();
  EXPECT_EQ(run("\"" + path + "\" --help"), 0) << "binary: " << path;
}

std::vector<std::string> all_binaries() {
  std::vector<std::string> paths;
  for (const auto& name : split_csv(SPINDOWN_BENCH_BINARIES)) {
    paths.push_back(std::string{SPINDOWN_BENCH_BIN_DIR} + "/" + name);
  }
  for (const auto& name : split_csv(SPINDOWN_EXAMPLE_BINARIES)) {
    paths.push_back(std::string{SPINDOWN_EXAMPLE_BIN_DIR} + "/" + name);
  }
  return paths;
}

std::string test_name(const ::testing::TestParamInfo<std::string>& info) {
  const auto slash = info.param.find_last_of('/');
  std::string name =
      slash == std::string::npos ? info.param : info.param.substr(slash + 1);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Binaries, SmokeTest,
                         ::testing::ValuesIn(all_binaries()), test_name);

TEST(QuickstartSmoke, TinyEndToEndRunExitsZero) {
  // 500 files is the smallest round catalog whose hottest Zipf file still
  // fits one disk's service capacity (the normalizer rejects tinier ones).
  const std::string quickstart =
      std::string{SPINDOWN_EXAMPLE_BIN_DIR} + "/quickstart";
  EXPECT_EQ(run("\"" + quickstart + "\" --files 500 --rate 1.0 --seed 1"), 0);
}

}  // namespace
