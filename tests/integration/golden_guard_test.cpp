// golden_guard_test.cpp — byte-exact regression guard for the default
// (FCFS) request path.
//
// The golden constants below were captured from the pre-scheduler simulator
// (the seed's monolithic FCFS Disk) immediately before the I/O-scheduling
// refactor, with the exact sweep reproduced here.  With
// SchedulerSpec::fcfs() — the default — the refactored path must reproduce
// every number bit for bit: same event order, same energy integral, same
// response summary.  Any intentional change to default-path semantics must
// re-derive these constants and say so in the commit.
//
// The three configurations cover the branches of the default path:
// break-even spin-down, an aggressive fixed threshold (spin-up churn), and
// never-spin-down behind an LRU front cache (cache hits bypass the disks).
#include <gtest/gtest.h>

#include <vector>

#include "core/normalize.h"
#include "core/pack_disks.h"
#include "sys/experiment.h"
#include "sys/sweep.h"
#include "workload/catalog.h"

namespace spindown::sys {
namespace {

struct Golden {
  std::uint64_t requests;
  std::uint64_t served_sum; ///< completed at the horizon snapshot
  double energy;
  double saving;
  std::uint64_t spin_ups;
  std::uint64_t spin_downs;
  std::uint64_t resp_count;
  double resp_mean;
  double resp_max;
  double resp_p99;
  std::uint64_t cache_hits;
};

// Captured 2026-07-29 from the pre-refactor simulator (see file comment).
// Re-derived 2026-08-07 for the fleet-sharding PR: result aggregation became
// canonical (response moments folded hits-first then per-disk in disk-id
// order instead of completion order; always-on energy summed per disk
// instead of farm-total), so `saving` and `resp_mean` moved by a few ulps.
// Event order, per-request response times, energy integrals, counts, and
// the histogram (max/p99) are bit-identical to the pre-refactor capture.
constexpr Golden kGolden[3] = {
    // break-even policy, no cache
    {979, 850, 333869.73696331761, -0.012003370049414652, 36, 36, 979,
     87.484344294067441, 445.03087415307198, 372.42100000000005, 0},
    // fixed 10 s threshold, no cache
    {979, 841, 334767.04675768159, -0.01672900557172019, 114, 116, 979,
     93.809647009646525, 445.03087415307198, 373.92100000000005, 0},
    // never spin down, 30 GB LRU front cache
    {979, 828, 328848.00923895644, 2.2204460492503131e-16, 0, 0, 979,
     79.066762766230838, 416.47659966191691, 362.92100000000005, 31},
};

TEST(GoldenGuard, FcfsDefaultReproducesPreRefactorSweepExactly) {
  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = 600;
  util::Rng rng{7};
  const auto cat = workload::generate_catalog(spec, rng);

  core::LoadModel model;
  model.rate = 1.2;
  model.load_fraction = 0.9;
  core::PackDisks pack;
  const auto a = pack.allocate(core::normalize(cat, model));
  ASSERT_EQ(a.disk_count, 34u); // layout itself is part of the contract

  std::vector<ExperimentConfig> configs;
  for (int i = 0; i < 3; ++i) {
    ExperimentConfig cfg;
    cfg.label = "golden";
    cfg.catalog = &cat;
    cfg.mapping = a.disk_of;
    cfg.num_disks = a.disk_count;
    cfg.workload = WorkloadSpec::poisson(1.2, 800.0);
    cfg.seed = 42;
    if (i == 0) cfg.policy = PolicySpec::break_even();
    if (i == 1) cfg.policy = PolicySpec::fixed(10.0);
    if (i == 2) {
      cfg.policy = PolicySpec::never();
      cfg.cache = CacheSpec::lru(util::gb(30.0));
    }
    configs.push_back(std::move(cfg));
  }
  const auto results = run_sweep(configs, 1);
  ASSERT_EQ(results.size(), 3u);

  for (int i = 0; i < 3; ++i) {
    SCOPED_TRACE("config " + std::to_string(i));
    const auto& r = results[i];
    const auto& g = kGolden[i];
    EXPECT_EQ(r.requests, g.requests);
    std::uint64_t served = 0;
    for (const auto& m : r.per_disk) served += m.served;
    EXPECT_EQ(served, g.served_sum);
    EXPECT_EQ(r.completed_at_horizon, g.served_sum);
    // Horizon accounting: every request is exactly one of completed,
    // in flight, or a cache hit at the snapshot.
    EXPECT_EQ(r.completed_at_horizon + r.in_flight_at_horizon + r.cache.hits,
              g.requests);
    EXPECT_DOUBLE_EQ(r.power.energy, g.energy);
    EXPECT_DOUBLE_EQ(r.power.saving_vs_always_on, g.saving);
    EXPECT_EQ(r.power.spin_ups, g.spin_ups);
    EXPECT_EQ(r.power.spin_downs, g.spin_downs);
    EXPECT_EQ(r.response.count(), g.resp_count);
    EXPECT_DOUBLE_EQ(r.response.mean(), g.resp_mean);
    EXPECT_DOUBLE_EQ(r.response.max(), g.resp_max);
    EXPECT_DOUBLE_EQ(r.response.p99(), g.resp_p99);
    EXPECT_EQ(r.cache.hits, g.cache_hits);
  }
}

} // namespace
} // namespace spindown::sys
