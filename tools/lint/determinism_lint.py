#!/usr/bin/env python3
"""determinism_lint.py — repo-specific static rules for simulator determinism.

The simulator's contract is: same seed => bit-identical results, on any
machine, at any thread count.  Every rule here bans a construct that can
silently break that contract:

  wall-clock           Wall-clock / ambient-entropy sources (system_clock,
                       time(), std::rand, random_device, ...) in result-
                       affecting code.  All randomness must flow from the
                       seeded util::Rng; all time from the simulation clock.
  unordered-iteration  Range-for over std::unordered_{map,set,...}: the
                       iteration order is implementation-defined and salted,
                       so any result that depends on it is nondeterministic.
  static-mutable       Mutable static state (function-local or namespace-
                       scope).  It leaks results across runs in one process
                       and across sweep workers in parallel code.
  spec-coverage        Every *Spec type declared in src/sys/scenario.h and
                       src/sys/experiment.h must be exercised by
                       tests/sys/spec_roundtrip_fuzz_test.cpp, so a new
                       scenario axis cannot ship without a parse(spec())
                       round-trip guard.
  obs                  Wall-clock waivers are confined to the observability
                       layer's profiling timer: a DETERMINISM-OK(wall-clock)
                       annotation anywhere but src/obs/profile.h fires this
                       rule.  Profiling code must route through
                       obs::ProfileClock so the repo keeps exactly one
                       sanctioned wall-clock site.

Suppressions: a finding is waived by an annotation on the same line or the
line directly above it, and the justification is mandatory:

    // DETERMINISM-OK(<rule>): <non-empty reason>

Usage:
    determinism_lint.py [--root DIR] [paths...]   lint (default: src/ tree)
    determinism_lint.py --self-test               run against the fixtures
    determinism_lint.py --list-rules              print rule names

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.

Implementation note: this is a lexer-level linter, not a full parser — the
container has neither libclang nor clang-query, and the rules only need
token-accurate scanning (comments and string literals are blanked first, so
a banned name inside a string or comment never fires).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

RULES = ("wall-clock", "unordered-iteration", "static-mutable",
         "spec-coverage", "obs")

# The one file allowed to carry a DETERMINISM-OK(wall-clock) waiver: the
# observability layer's profiling clock (obs::ProfileClock).
OBS_WALLCLOCK_SANCTIONED = os.path.join("obs", "profile.h")

ALLOW_RE = re.compile(r"//\s*DETERMINISM-OK\(([a-z-]+)\)\s*:\s*(\S.*)?$")

# Identifiers whose presence in code (not comments/strings) marks a
# wall-clock or ambient-entropy source.  `time` and `clock` are matched as
# calls to avoid flagging members like `service_time(...)` or `sim.clock()`
# (we only match them without a preceding `.`, `->`, or identifier char).
WALL_CLOCK_TOKENS = (
    "system_clock",
    "high_resolution_clock",
    "steady_clock",
    "random_device",
    "gettimeofday",
    "clock_gettime",
    "localtime",
    "gmtime",
    "srand",
)
WALL_CLOCK_RE = re.compile(
    "|".join(rf"\b{t}\b" for t in WALL_CLOCK_TOKENS)
    # std::rand() / ::rand(); plain `rand` is too common as a substring.
    + r"|(?:std::|::)rand\s*\("
    # Bare time(...)/clock(...) calls: not preceded by an identifier char,
    # `.`, `->`, or `::` (so sim.clock(), params.time(...) never match).
    + r"|(?<![\w.>:])time\s*\("
    + r"|(?<![\w.>:])clock\s*\(")

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\b")
SPEC_DECL_RE = re.compile(r"\b(?:struct|class)\s+(\w*Spec)\b")


class Finding(NamedTuple):
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines and
    column positions so findings keep accurate locations."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                # Raw strings: find the delimiter and skip to its close.
                if out and out[-1] == "R":
                    m = re.match(r'"([^\s()\\]{0,16})\(', text[i:])
                    if m:
                        close = ")" + m.group(1) + '"'
                        end = text.find(close, i + m.end())
                        end = n if end < 0 else end + len(close)
                        out.append(
                            "".join(ch if ch == "\n" else " "
                                    for ch in text[i:end]))
                        i = end
                        continue
                mode = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                mode = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
            elif (mode == "string" and c == '"') or (mode == "char"
                                                     and c == "'"):
                mode = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def collect_allows(raw_lines: Sequence[str]) -> Dict[int, Tuple[str, str]]:
    """Map 1-based line number -> (rule, reason) for every line covered by a
    DETERMINISM-OK annotation (the annotation's own line and the next)."""
    allows: Dict[int, Tuple[str, str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rule, reason = m.group(1), (m.group(2) or "").strip()
        allows[idx] = (rule, reason)
        allows.setdefault(idx + 1, (rule, reason))
    return allows


def is_allowed(allows: Dict[int, Tuple[str, str]], line: int, rule: str,
               findings: List[Finding], path: str) -> bool:
    entry = allows.get(line)
    if entry is None:
        return False
    allowed_rule, reason = entry
    if allowed_rule != rule:
        return False
    if not reason:
        findings.append(
            Finding(path, line, rule,
                    "DETERMINISM-OK annotation needs a non-empty reason"))
        return True  # suppressed, but the empty justification is itself a finding
    return True


# --- rule: wall-clock -------------------------------------------------------


def check_wall_clock(path: str, stripped: str,
                     allows: Dict[int, Tuple[str, str]]) -> List[Finding]:
    findings: List[Finding] = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        for m in WALL_CLOCK_RE.finditer(line):
            if is_allowed(allows, lineno, "wall-clock", findings, path):
                continue
            token = m.group(0).strip().rstrip("(").strip()
            findings.append(
                Finding(
                    path, lineno, "wall-clock",
                    f"wall-clock/entropy source `{token}` — derive time from "
                    "the simulation clock and randomness from the seeded "
                    "util::Rng"))
    return findings


# --- rule: unordered-iteration ---------------------------------------------


def _skip_angle_brackets(text: str, i: int) -> int:
    """Given text[i] == '<', return the index one past the matching '>'."""
    depth = 0
    while i < len(text):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif text[i] in ";{}":
            break  # malformed; bail out
        i += 1
    return i


def collect_unordered_names(stripped: str) -> List[str]:
    """Names of variables/members declared with an unordered container type
    anywhere in this translation unit."""
    names: List[str] = []
    for m in UNORDERED_DECL_RE.finditer(stripped):
        i = m.end()
        while i < len(stripped) and stripped[i].isspace():
            i += 1
        if i < len(stripped) and stripped[i] == "<":
            i = _skip_angle_brackets(stripped, i)
        decl = re.match(r"\s*&?\s*(\w+)\s*[;{=,)\[]", stripped[i:i + 200])
        if decl and not decl.group(1).isdigit():
            names.append(decl.group(1))
    return names


def iter_range_fors(stripped: str):
    """Yield (line, expression) for every range-based for statement."""
    for m in re.finditer(r"\bfor\s*\(", stripped):
        start = m.end() - 1  # at '('
        depth, i = 0, start
        while i < len(stripped):
            if stripped[i] == "(":
                depth += 1
            elif stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        body = stripped[start + 1:i]
        if ";" in body:
            continue  # classic for loop
        # Top-level ':' split (skip '::'); structured bindings have no colon.
        depth_sq = depth_par = 0
        split = -1
        j = 0
        while j < len(body):
            c = body[j]
            if c == "[":
                depth_sq += 1
            elif c == "]":
                depth_sq -= 1
            elif c == "(":
                depth_par += 1
            elif c == ")":
                depth_par -= 1
            elif c == ":" and depth_sq == 0 and depth_par == 0:
                if j + 1 < len(body) and body[j + 1] == ":":
                    j += 2
                    continue
                if j > 0 and body[j - 1] == ":":
                    j += 1
                    continue
                split = j
                break
            j += 1
        if split < 0:
            continue
        expr = body[split + 1:].strip()
        line = stripped.count("\n", 0, m.start()) + 1
        yield line, expr


def check_unordered_iteration(
        path: str, stripped: str,
        allows: Dict[int, Tuple[str, str]]) -> List[Finding]:
    findings: List[Finding] = []
    names = collect_unordered_names(stripped)
    name_re = (re.compile("|".join(rf"\b{re.escape(n)}\b" for n in names))
               if names else None)
    for line, expr in iter_range_fors(stripped):
        hit = "unordered_" in expr or (name_re and name_re.search(expr))
        if not hit:
            continue
        if is_allowed(allows, line, "unordered-iteration", findings, path):
            continue
        findings.append(
            Finding(
                path, line, "unordered-iteration",
                f"range-for over unordered container `{expr[:60]}` — "
                "iteration order is implementation-defined; iterate a "
                "deterministically-ordered structure instead"))
    return findings


# --- rule: static-mutable ---------------------------------------------------


def check_static_mutable(path: str, stripped: str,
                         allows: Dict[int, Tuple[str, str]]) -> List[Finding]:
    findings: List[Finding] = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        m = re.match(r"\s*static\s+(.*)$", line)
        if not m:
            continue
        rest = m.group(1)
        # Immutable or compile-time state is fine.
        if re.match(r"(?:const|constexpr|constinit)\b", rest):
            continue
        if re.search(r"\bconst(?:expr|init)?\b", rest.split("=")[0]):
            continue
        # Function declaration/definition: a '(' before any '='.
        eq = rest.find("=")
        par = rest.find("(")
        if par >= 0 and (eq < 0 or par < eq):
            continue
        # Plain `static;`-less fragments (e.g. broken lines) are skipped.
        if not re.search(r"\w", rest):
            continue
        if is_allowed(allows, lineno, "static-mutable", findings, path):
            continue
        findings.append(
            Finding(
                path, lineno, "static-mutable",
                f"mutable static state `static {rest.strip()[:60]}` — state "
                "must live in the experiment/run object, never in statics"))
    return findings


# --- rule: obs --------------------------------------------------------------


def check_obs_wallclock(path: str, raw_lines: Sequence[str],
                        allows: Dict[int, Tuple[str, str]]) -> List[Finding]:
    """A wall-clock waiver outside src/obs/profile.h: the waived read itself
    is legal C++, but it forks a second wall-clock site — profiling timers
    must go through obs::ProfileClock instead."""
    if path.replace(os.sep, "/").endswith(
            OBS_WALLCLOCK_SANCTIONED.replace(os.sep, "/")):
        return []
    findings: List[Finding] = []
    for lineno, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m or m.group(1) != "wall-clock":
            continue
        if is_allowed(allows, lineno, "obs", findings, path):
            continue
        findings.append(
            Finding(
                path, lineno, "obs",
                "wall-clock waiver outside src/obs/profile.h — profiling "
                "timers must use obs::ProfileClock, the repo's sole "
                "sanctioned wall-clock site"))
    return findings


# --- rule: spec-coverage ----------------------------------------------------


def check_spec_coverage(spec_headers: Sequence[str],
                        roundtrip_test: str) -> List[Finding]:
    findings: List[Finding] = []
    try:
        # Strip comments so a Spec name merely *mentioned* in prose does not
        # count as coverage — it must appear in test code.
        test_text = strip_comments_and_strings(
            open(roundtrip_test, encoding="utf-8").read())
    except OSError as e:
        return [
            Finding(roundtrip_test, 1, "spec-coverage",
                    f"cannot read round-trip test: {e}")
        ]
    for header in spec_headers:
        try:
            text = open(header, encoding="utf-8").read()
        except OSError as e:
            findings.append(
                Finding(header, 1, "spec-coverage",
                        f"cannot read spec header: {e}"))
            continue
        stripped = strip_comments_and_strings(text)
        for m in SPEC_DECL_RE.finditer(stripped):
            name = m.group(1)
            if re.search(rf"\b{name}\b", test_text):
                continue
            line = stripped.count("\n", 0, m.start()) + 1
            findings.append(
                Finding(
                    header, line, "spec-coverage",
                    f"`{name}` is not exercised by "
                    f"{os.path.basename(roundtrip_test)} — every *Spec must "
                    "have a parse(spec()) round-trip guard"))
    return findings


# --- driver -----------------------------------------------------------------


def lint_file(path: str, rules: Sequence[str]) -> List[Finding]:
    try:
        text = open(path, encoding="utf-8").read()
    except OSError as e:
        return [Finding(path, 1, "wall-clock", f"cannot read file: {e}")]
    raw_lines = text.splitlines()
    allows = collect_allows(raw_lines)
    stripped = strip_comments_and_strings(text)
    findings: List[Finding] = []
    if "wall-clock" in rules:
        findings += check_wall_clock(path, stripped, allows)
    if "unordered-iteration" in rules:
        findings += check_unordered_iteration(path, stripped, allows)
    if "static-mutable" in rules:
        findings += check_static_mutable(path, stripped, allows)
    if "obs" in rules:
        findings += check_obs_wallclock(path, raw_lines, allows)
    return findings


def cxx_sources(root: str) -> List[str]:
    out: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith((".h", ".hpp", ".cpp", ".cc")):
                out.append(os.path.join(dirpath, name))
    return out


def lint_tree(root: str, paths: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint the repo rooted at `root`.  The per-file rules run over src/ (or
    the explicit paths); spec-coverage runs over the canonical spec headers."""
    findings: List[Finding] = []
    if paths:
        files = []
        for p in paths:
            files += cxx_sources(p) if os.path.isdir(p) else [p]
    else:
        files = cxx_sources(os.path.join(root, "src"))
    for f in files:
        findings += lint_file(f, RULES)
    scenario_h = os.path.join(root, "src", "sys", "scenario.h")
    experiment_h = os.path.join(root, "src", "sys", "experiment.h")
    fuzz = os.path.join(root, "tests", "sys", "spec_roundtrip_fuzz_test.cpp")
    if not paths and os.path.exists(scenario_h):
        findings += check_spec_coverage([scenario_h, experiment_h], fuzz)
    return findings


# --- self-test against the fixtures ----------------------------------------


def self_test(fixture_dir: str) -> int:
    """Each bad fixture must fire exactly its rule; the clean fixture must be
    silent; the spec fixture must flag only the unregistered Spec."""
    failures: List[str] = []

    def expect(desc: str, cond: bool):
        if not cond:
            failures.append(desc)

    def rules_fired(findings: List[Finding]) -> List[str]:
        return sorted({f.rule for f in findings})

    cases = [
        ("bad_wallclock.cpp", "wall-clock", 3),
        ("bad_unordered_iter.cpp", "unordered-iteration", 2),
        ("bad_static_state.cpp", "static-mutable", 2),
        # The wall-clock use is waived (with a reason), so only the obs rule
        # fires: the waiver itself is the violation outside obs/profile.h.
        ("bad_obs_wallclock.cpp", "obs", 1),
    ]
    for name, rule, min_count in cases:
        path = os.path.join(fixture_dir, name)
        findings = lint_file(path, RULES)
        expect(f"{name}: expected only [{rule}], got {rules_fired(findings)}",
               rules_fired(findings) == [rule])
        expect(
            f"{name}: expected >= {min_count} findings, got {len(findings)}",
            len(findings) >= min_count)

    clean = lint_file(os.path.join(fixture_dir, "clean.cpp"), RULES)
    expect(f"clean.cpp: expected no findings, got {clean}", not clean)

    spec_findings = check_spec_coverage(
        [os.path.join(fixture_dir, "spec_coverage", "mini_scenario.h")],
        os.path.join(fixture_dir, "spec_coverage", "mini_roundtrip_test.cpp"))
    expect(
        "spec_coverage: expected exactly BarSpec flagged, got "
        f"{[f.message for f in spec_findings]}",
        len(spec_findings) == 1 and "BarSpec" in spec_findings[0].message)

    unjustified = lint_file(os.path.join(fixture_dir, "bad_empty_reason.cpp"),
                            RULES)
    expect(
        "bad_empty_reason.cpp: empty suppression reason must be a finding, "
        f"got {unjustified}",
        any("non-empty reason" in f.message for f in unjustified))

    if failures:
        print("determinism_lint self-test FAILED:")
        for f in failures:
            print("  -", f)
        return 1
    print("determinism_lint self-test passed "
          f"({len(cases) + 3} fixture checks).")
    return 0


def main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels up from here)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter against its fixture suite")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="files/dirs to lint (default: <root>/src)")
    args = parser.parse_args(argv)

    here = os.path.dirname(os.path.abspath(__file__))
    root = args.root or os.path.dirname(os.path.dirname(here))

    if args.list_rules:
        print("\n".join(RULES))
        return 0
    if args.self_test:
        return self_test(os.path.join(here, "fixtures"))

    findings = lint_tree(root, args.paths or None)
    for f in findings:
        print(f.render())
    if findings:
        print(f"\n{len(findings)} determinism finding(s).  Suppress only "
              "with `// DETERMINISM-OK(rule): reason`.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
