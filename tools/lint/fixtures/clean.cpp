// Fixture: deterministic idioms — the linter must report nothing here.
// (Not part of the build; consumed by determinism_lint.py --self-test.)
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

// A seeded, explicit generator is the only sanctioned randomness source.
struct SeededRng {
  explicit SeededRng(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state;
  }
  std::uint64_t state;
};

double deterministic_sum(const std::map<std::uint32_t, double>& weights) {
  double total = 0.0;
  for (const auto& [id, w] : weights) {  // ordered map: fine
    total += w * static_cast<double>(id);
  }
  return total;
}

// Unordered lookup (no iteration) is fine, as is iterating a sorted copy.
double lookup(const std::unordered_map<std::uint32_t, double>& index,
              const std::vector<std::uint32_t>& order) {
  double total = 0.0;
  for (const auto id : order) {
    const auto it = index.find(id);
    if (it != index.end()) total += it->second;
  }
  return total;
}

// A justified suppression: allowed because the reason is written down.
// DETERMINISM-OK(static-mutable): fixture demonstrating a justified waiver
static int g_waived = 0;

int touch_waived() { return ++g_waived; }

// Mentions in comments/strings never fire: system_clock, random_device.
const char* kDescription = "uses std::rand() only in this string";
