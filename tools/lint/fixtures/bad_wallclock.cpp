// Fixture: every statement below must fire the wall-clock rule.
// (Not part of the build; consumed by determinism_lint.py --self-test.)
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double bad_now() {
  auto t = std::chrono::system_clock::now();  // finding: system_clock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long bad_epoch() {
  return time(nullptr);  // finding: time(
}

int bad_rand() {
  return std::rand();  // finding: std::rand(
}

unsigned bad_entropy() {
  std::random_device rd;  // finding: random_device
  return rd();
}

// A mention of system_clock in a comment, and "random_device" in a string,
// must NOT fire: the scanner strips comments and literals first.
const char* kNotAFinding = "random_device steady_clock time( rand(";
