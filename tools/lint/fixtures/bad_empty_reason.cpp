// Fixture: a DETERMINISM-OK annotation with an empty reason must itself be
// reported (suppressions require a written justification).
// (Not part of the build; consumed by determinism_lint.py --self-test.)

// DETERMINISM-OK(static-mutable):
static int g_unjustified = 0;

int touch() { return ++g_unjustified; }
