// Fixture: the statics below must fire the static-mutable rule.
// (Not part of the build; consumed by determinism_lint.py --self-test.)
#include <cstdint>
#include <string>
#include <vector>

static std::uint64_t g_call_count = 0;  // finding: namespace-scope mutable

int bad_counter() {
  static int calls = 0;  // finding: function-local mutable
  g_call_count += 1;
  return ++calls;
}

// Compile-time and immutable statics must NOT fire.
static constexpr double kPi = 3.14159265358979;
static const std::string kName = "fixture";

// Static member function *declarations* must NOT fire either.
struct Widget {
  static Widget parse(const std::string& text);
  static int size_of(const Widget& w) { return static_cast<int>(sizeof(w)); }
};

double use_all() { return kPi + static_cast<double>(kName.size()); }
