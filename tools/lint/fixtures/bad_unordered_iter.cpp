// Fixture: the range-fors below must fire the unordered-iteration rule.
// (Not part of the build; consumed by determinism_lint.py --self-test.)
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

double bad_sum(const std::unordered_map<std::uint32_t, double>& weights) {
  double total = 0.0;
  for (const auto& [id, w] : weights) {  // finding: unordered-iteration
    total += w * static_cast<double>(id);
  }
  return total;
}

std::uint64_t bad_first() {
  std::unordered_set<std::uint64_t> seen{3, 1, 4, 1, 5};
  for (auto v : seen) {  // finding: unordered-iteration
    return v;  // "first" element depends on hash salt: nondeterministic
  }
  return 0;
}

// A classic for loop over an index must NOT fire even though an unordered
// container is in scope.
std::size_t fine_count(const std::unordered_set<int>& s, int n) {
  std::size_t hits = 0;
  for (int i = 0; i < n; ++i) {
    hits += s.count(i);
  }
  return hits;
}
