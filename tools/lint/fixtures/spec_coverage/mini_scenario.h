// Fixture: FooSpec is registered in mini_roundtrip_test.cpp, BarSpec is not
// — the spec-coverage rule must flag exactly BarSpec.
// (Not part of the build; consumed by determinism_lint.py --self-test.)
#pragma once

#include <string>

struct FooSpec {
  static FooSpec parse(const std::string& name);
  std::string spec() const;
};

struct BarSpec {
  static BarSpec parse(const std::string& name);
  std::string spec() const;
};
