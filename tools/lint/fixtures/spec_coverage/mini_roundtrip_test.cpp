// Fixture: round-trip test registering FooSpec only (BarSpec is missing on
// purpose so the spec-coverage rule has something to catch).
// (Not part of the build; consumed by determinism_lint.py --self-test.)
#include "mini_scenario.h"

void roundtrip_foo() {
  FooSpec s;
  (void)FooSpec::parse(s.spec());
}
