// Fixture: a DETERMINISM-OK(wall-clock) waiver outside src/obs/profile.h
// must fire the obs rule — the waived read is suppressed, but the waiver
// itself forks a second sanctioned wall-clock site.
// (Not part of the build; consumed by determinism_lint.py --self-test.)
#include <chrono>

double sneaky_profile_timer() {
  // DETERMINISM-OK(wall-clock): hand-rolled stage timer, looks plausible.
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
