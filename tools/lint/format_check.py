#!/usr/bin/env python3
"""format_check.py — dependency-free mechanical formatting floor.

clang-format (enforced in CI via `--dry-run --Werror` and locally via the
`format-check` CMake target when the tool is installed) is the full style
check.  This script is the subset that needs no tooling, so every
environment — including ones without LLVM — can still gate the mechanical
invariants:

  * no tab characters
  * no trailing whitespace
  * no CR/LF line endings
  * file ends with exactly one newline
  * no line longer than 80 characters (counted in characters, not bytes —
    the tree's comments use UTF-8 punctuation)

Usage: format_check.py [--root DIR] [paths...]
Exit status: 0 = clean, 1 = violations.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Sequence

DEFAULT_DIRS = ("src", "bench", "examples", "tests")
EXTENSIONS = (".h", ".hpp", ".cpp", ".cc")
MAX_COLUMNS = 80


def sources(root: str, paths: Sequence[str]) -> List[str]:
    if paths:
        roots = list(paths)
    else:
        roots = [os.path.join(root, d) for d in DEFAULT_DIRS]
    out: List[str] = []
    for r in roots:
        if os.path.isfile(r):
            out.append(r)
            continue
        for dirpath, dirnames, filenames in os.walk(r):
            dirnames.sort()
            out += [
                os.path.join(dirpath, f) for f in sorted(filenames)
                if f.endswith(EXTENSIONS)
            ]
    return out


def check_file(path: str) -> List[str]:
    problems: List[str] = []
    with open(path, "rb") as fh:
        raw = fh.read()
    if b"\r" in raw:
        problems.append(f"{path}: CR/LF line endings")
    if raw and not raw.endswith(b"\n"):
        problems.append(f"{path}: missing final newline")
    if raw.endswith(b"\n\n"):
        problems.append(f"{path}: trailing blank line(s) at end of file")
    text = raw.decode("utf-8", errors="replace")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "\t" in line:
            problems.append(f"{path}:{lineno}: tab character")
        if line != line.rstrip():
            problems.append(f"{path}:{lineno}: trailing whitespace")
        if len(line) > MAX_COLUMNS:
            problems.append(
                f"{path}:{lineno}: {len(line)} columns (limit {MAX_COLUMNS})")
    return problems


def main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None)
    parser.add_argument("paths", nargs="*")
    args = parser.parse_args(argv)
    here = os.path.dirname(os.path.abspath(__file__))
    root = args.root or os.path.dirname(os.path.dirname(here))

    problems: List[str] = []
    for path in sources(root, args.paths):
        problems += check_file(path)
    for p in problems:
        print(p)
    if problems:
        print(f"\n{len(problems)} mechanical formatting violation(s).")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
