#!/usr/bin/env python3
"""trace_check.py — structural validator for spindown trace files.

Validates the two export formats of src/obs/export.cpp:

  Chrome trace_event JSON (any extension but .jsonl):
    - the file is well-formed JSON: an object with a "traceEvents" list
    - every event is an object with a known "ph" and integer pid/tid
    - every non-metadata event carries a finite numeric "ts" (and "X"
      slices a non-negative "dur")
    - per (pid, tid) track, timestamps are non-decreasing in file order —
      the canonical merge emits each track's events in sim-time order, so
      a violation means the deterministic merge broke
    - async "b"/"e" pairs balance per (cat, id, tid)

  JSONL (.jsonl):
    - line 1 is {"format":"spindown-trace","version":...} metadata
    - every following line is one flat event object with t/track/kind/code
    - per track, sim-time events (no "wall" flag) have non-decreasing t

Usage:
    trace_check.py FILE [FILE...]     validate trace files (format by suffix)
    trace_check.py --self-test        run against built-in good/bad samples

Exit status: 0 = all files valid, 1 = findings, 2 = usage/IO error.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Tuple

CHROME_PHASES = {"M", "b", "e", "i", "X", "C"}
JSONL_KINDS = {"span", "power", "policy", "metric", "profile"}


def _is_num(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_chrome(text: str, label: str) -> List[str]:
    errors: List[str] = []
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        return [f"{label}: not well-formed JSON: {e}"]
    if not isinstance(doc, dict) or not isinstance(
            doc.get("traceEvents"), list):
        return [f"{label}: top level must be an object with a "
                "'traceEvents' list"]
    last_ts: Dict[Tuple[int, int], float] = {}
    open_spans: Dict[Tuple[str, int, int], int] = {}
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"{label}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event is not an object")
            continue
        ph = ev.get("ph")
        if ph not in CHROME_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("pid"), int) or not isinstance(
                ev.get("tid"), int):
            errors.append(f"{where}: pid/tid must be integers")
            continue
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not _is_num(ts):
            errors.append(f"{where}: ph={ph} needs a numeric 'ts'")
            continue
        track = (ev["pid"], ev["tid"])
        if ts < last_ts.get(track, float("-inf")):
            errors.append(
                f"{where}: ts {ts} goes backwards on track pid={track[0]} "
                f"tid={track[1]} (previous {last_ts[track]})")
        last_ts[track] = ts
        if ph == "X":
            dur = ev.get("dur")
            if not _is_num(dur) or dur < 0:
                errors.append(f"{where}: 'X' slice needs a dur >= 0")
        elif ph in ("b", "e"):
            key = (str(ev.get("cat")), ev.get("id"), ev["tid"])
            open_spans[key] = open_spans.get(key, 0) + (1 if ph == "b" else
                                                        -1)
            if open_spans[key] < 0:
                errors.append(f"{where}: 'e' with no matching 'b' for "
                              f"cat={key[0]} id={key[1]}")
    unbalanced = sum(1 for v in open_spans.values() if v != 0)
    if unbalanced:
        errors.append(
            f"{label}: {unbalanced} async span(s) never closed — every 'b' "
            "needs a matching 'e' (requests in flight at the horizon close "
            "at their completion, so this indicates a truncated file)")
    return errors


def check_jsonl(text: str, label: str) -> List[str]:
    errors: List[str] = []
    lines = text.splitlines()
    if not lines:
        return [f"{label}: empty file"]
    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as e:
        return [f"{label}: line 1 (metadata) is not JSON: {e}"]
    if not isinstance(meta, dict) or meta.get("format") != "spindown-trace":
        return [f"{label}: line 1 must be the "
                '{"format":"spindown-trace",...} metadata object']
    last_t: Dict[int, float] = {}
    for lineno, line in enumerate(lines[1:], start=2):
        where = f"{label}:{lineno}"
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{where}: not JSON: {e}")
            continue
        if not isinstance(ev, dict):
            errors.append(f"{where}: event is not an object")
            continue
        missing = [k for k in ("t", "track", "kind", "code") if k not in ev]
        if missing:
            errors.append(f"{where}: missing key(s) {missing}")
            continue
        if ev["kind"] not in JSONL_KINDS:
            errors.append(f"{where}: unknown kind {ev['kind']!r}")
            continue
        if not _is_num(ev["t"]) or not isinstance(ev["track"], int):
            errors.append(f"{where}: 't' must be numeric, 'track' integer")
            continue
        if ev.get("wall"):
            continue  # profile samples are wall-clock offsets, unordered
        track = ev["track"]
        if ev["t"] < last_t.get(track, float("-inf")):
            errors.append(
                f"{where}: t {ev['t']} goes backwards on track {track} "
                f"(previous {last_t[track]})")
        last_t[track] = ev["t"]
    return errors


def check_file(path: str) -> List[str]:
    try:
        text = open(path, encoding="utf-8").read()
    except OSError as e:
        return [f"{path}: cannot read: {e}"]
    if path.endswith(".jsonl"):
        return check_jsonl(text, path)
    return check_chrome(text, path)


# --- self-test ---------------------------------------------------------------

GOOD_CHROME = """{"traceEvents":[
{"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"sim"}},
{"ph":"b","cat":"request","name":"request","id":7,"pid":0,"tid":3,"ts":0.5,"args":{}},
{"ph":"X","cat":"power","name":"transfer","pid":0,"tid":3,"ts":1.0,"dur":2.5,"args":{}},
{"ph":"e","cat":"request","name":"request","id":7,"pid":0,"tid":3,"ts":4.0,"args":{}},
{"ph":"C","pid":0,"tid":4294967294,"ts":0.0,"name":"queued","args":{"queued":1}},
{"ph":"i","s":"t","cat":"policy","name":"timer_armed","pid":0,"tid":5,"ts":9.0,"args":{}}
],"displayTimeUnit":"ms"}
"""

BAD_CHROME_BACKWARDS = GOOD_CHROME.replace('"tid":3,"ts":4.0', '"tid":3,"ts":0.1')
BAD_CHROME_UNBALANCED = GOOD_CHROME.replace(
    '{"ph":"e","cat":"request","name":"request","id":7,"pid":0,"tid":3,'
    '"ts":4.0,"args":{}},\n', "")

GOOD_JSONL = """{"format":"spindown-trace","version":1,"horizon_s":10}
{"t":0.5,"track":3,"kind":"span","code":"submit","id":7,"value":0,"aux":0}
{"t":1.5,"track":3,"kind":"power","code":"transfer","id":3,"value":0,"aux":0}
{"t":0.25,"track":-1,"kind":"span","code":"cache_hit","id":9,"value":0,"aux":0}
{"t":0.01,"track":2,"kind":"profile","code":"worker_replay","id":0,"value":0.1,"aux":0,"wall":true}
"""

BAD_JSONL_BACKWARDS = GOOD_JSONL.replace(
    '{"t":1.5,"track":3', '{"t":0.2,"track":3')
BAD_JSONL_NOMETA = GOOD_JSONL.split("\n", 1)[1]


def self_test() -> int:
    cases = [
        ("good chrome", check_chrome(GOOD_CHROME, "<good>"), False),
        ("backwards chrome", check_chrome(BAD_CHROME_BACKWARDS,
                                          "<bad>"), True),
        ("unbalanced chrome", check_chrome(BAD_CHROME_UNBALANCED,
                                           "<bad>"), True),
        ("not json", check_chrome("{nope", "<bad>"), True),
        ("good jsonl", check_jsonl(GOOD_JSONL, "<good>"), False),
        ("backwards jsonl", check_jsonl(BAD_JSONL_BACKWARDS, "<bad>"), True),
        ("missing metadata", check_jsonl(BAD_JSONL_NOMETA, "<bad>"), True),
    ]
    failures = [
        f"{name}: expected {'errors' if want else 'clean'}, got {errs}"
        for name, errs, want in cases if bool(errs) != want
    ]
    if failures:
        print("trace_check self-test FAILED:")
        for f in failures:
            print("  -", f)
        return 1
    print(f"trace_check self-test passed ({len(cases)} sample checks).")
    return 0


def main(argv: List[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0 if argv else 2
    if argv[0] == "--self-test":
        return self_test()
    status = 0
    for path in argv:
        errors = check_file(path)
        if errors:
            status = 1
            for e in errors[:50]:
                print(e)
            if len(errors) > 50:
                print(f"{path}: ... and {len(errors) - 50} more")
        else:
            print(f"{path}: OK")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
