// fig1_disk_model.cpp — Figure 1 + Table 2: the disk power model.
//
// Prints the power-state diagram parameters of the simulated Seagate
// ST3500630AS and the derived break-even idleness threshold, and verifies
// the transition energetics by simulating one idle->standby->active round
// trip and comparing integrated energy against the closed form.
#include <iostream>

#include "bench_common.h"
#include "des/simulation.h"
#include "disk/disk.h"
#include "disk/params.h"
#include "disk/power.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace spindown;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Disk power model (Seagate ST3500630AS)",
                      "Figure 1 and Table 2 of Otoo/Rotem/Tsao, IPPS 2009");

  const auto p = disk::DiskParams::st3500630as();

  util::TablePrinter table{{"parameter", "value", "paper (Table 2)"}};
  table.row("model", p.model, "Seagate ST3500630AS");
  table.row("capacity", util::format_bytes(p.capacity), "500 GB");
  table.row("avg seek", util::format_seconds(p.avg_seek_s), "8.5 ms");
  table.row("avg rotation", util::format_seconds(p.avg_rotation_s), "4.16 ms");
  table.row("transfer rate",
            util::format_double(p.transfer_bps / 1e6, 1) + " MB/s", "72 MB/s");
  table.row("idle power", util::format_double(p.idle_w, 2) + " W", "9.3 W");
  table.row("standby power", util::format_double(p.standby_w, 2) + " W",
            "0.8 W");
  table.row("active power", util::format_double(p.active_w, 2) + " W", "13 W");
  table.row("seek power", util::format_double(p.seek_w, 2) + " W", "12.6 W");
  table.row("spin-up", util::format_seconds(p.spinup_s) + " @ " +
                           util::format_double(p.spinup_w, 1) + " W",
            "15 s @ 24 W");
  table.row("spin-down", util::format_seconds(p.spindown_s) + " @ " +
                             util::format_double(p.spindown_w, 1) + " W",
            "10 s @ 9.3 W");
  table.row("derived break-even threshold",
            util::format_seconds(p.break_even_threshold()), "53.3 s");
  table.print(std::cout);

  // Validate the state machine energetics with a micro-simulation: one
  // request, long idle gap, spin-down, second request (spin-up + service).
  des::Simulation sim;
  disk::Disk d{sim, 0, p, disk::make_break_even_policy(p),
               util::Rng{opts.seed}};
  const util::Bytes file = util::mb(100.0);
  sim.schedule_at(0.0, [&] { d.submit(0, file); });
  const double t2 = 400.0; // well past threshold + spin-down
  sim.schedule_at(t2, [&] { d.submit(1, file); });
  sim.run();
  const auto m = d.metrics(sim.now());

  // Full episode: service, idle-out, spin-down, standby until t2, spin-up,
  // service, idle-out again, final spin-down (the simulation ends there).
  const double service = p.service_time(file);
  const double standby =
      t2 - (service + p.break_even_threshold() + p.spindown_s);
  const double expected_energy =
      2 * (p.position_time() * p.seek_w + p.transfer_time(file) * p.active_w) +
      2 * p.break_even_threshold() * p.idle_w +
      2 * p.spindown_s * p.spindown_w + standby * p.standby_w +
      p.spinup_s * p.spinup_w;

  std::cout << "\nround-trip validation:\n";
  std::cout << "  simulated energy : " << util::format_double(m.energy(p), 3)
            << " J\n";
  std::cout << "  closed-form      : "
            << util::format_double(expected_energy, 3) << " J\n";
  std::cout << "  spin-downs/ups   : " << m.spin_downs << "/" << m.spin_ups
            << " (expected 2/1)\n";

  if (auto csv = opts.csv()) {
    csv->write_row({"quantity", "value"});
    csv->row("break_even_s", p.break_even_threshold());
    csv->row("transition_energy_j", p.transition_energy());
    csv->row("roundtrip_sim_j", m.energy(p));
    csv->row("roundtrip_closed_form_j", expected_energy);
  }

  const bool ok = std::abs(m.energy(p) - expected_energy) < 1e-6 &&
                  m.spin_downs == 2 && m.spin_ups == 1;
  std::cout << (ok ? "\nPASS" : "\nFAIL")
            << ": state machine matches Figure 1\n";
  return ok ? 0 : 1;
}
