// fig6_threshold_resptime.cpp — Figure 6: response time vs. idleness
// threshold on the NERSC trace, same five configurations as Figure 5.
//
// Paper shape: random placement needs a threshold >= 0.5 h to keep mean
// response under 10 s (aggressive spin-down makes almost every request pay
// the 15 s spin-up), while Pack_Disk(4) stays low and flat because the few
// hot disks never go to sleep.
#include <iostream>

#include "bench_common.h"
#include "paper_workload.h"

int main(int argc, char** argv) {
  using namespace spindown;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Response time vs. idleness threshold (NERSC trace)",
                      "Figure 6 of Otoo/Rotem/Tsao, IPPS 2009");

  const auto spec = bench::nersc_paper_spec(opts.full);
  std::cout << "synthesizing NERSC-like trace (" << spec.n_requests
            << " requests / " << spec.n_files << " files)...\n\n";

  const std::vector<double> thresholds_h =
      opts.full ? std::vector<double>{0.01, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0}
                : std::vector<double>{0.01, 0.25, 0.5, 1.0, 2.0};

  std::vector<sys::ScenarioSpec> scenarios;
  for (const double th : thresholds_h) {
    for (const auto c : bench::kAllNerscConfigs) {
      scenarios.push_back(
          bench::nersc_scenario(spec, c, th * util::kHour, opts.seed));
    }
  }
  const auto results = sys::run_scenarios(scenarios, opts.threads);

  util::TablePrinter table{{"threshold (h)", "RND", "Pack_Disk", "Pack_Disk4",
                            "RND+LRU", "Pack_Disk4+LRU"}};
  auto csv = opts.csv();
  if (csv) csv->write_row({"threshold_h", "config", "mean_resp_s"});
  auto json = opts.json("fig6_threshold_resptime", !opts.full);

  const std::size_t n_cfg = std::size(bench::kAllNerscConfigs);
  for (std::size_t ti = 0; ti < thresholds_h.size(); ++ti) {
    std::vector<std::string> row{util::format_double(thresholds_h[ti], 2)};
    for (std::size_t ci = 0; ci < n_cfg; ++ci) {
      const auto& r = results[ti * n_cfg + ci];
      row.push_back(util::format_double(r.response.mean(), 2));
      if (csv) {
        csv->row(thresholds_h[ti],
                 bench::to_string(bench::kAllNerscConfigs[ci]),
                 r.response.mean());
      }
      if (json) {
        json->row({{"threshold_h", thresholds_h[ti]},
                   {"config", bench::to_string(bench::kAllNerscConfigs[ci])},
                   {"mean_resp_s", r.response.mean()},
                   {"p95_resp_s", r.response.p95()},
                   {"p99_resp_s", r.response.p99()}});
      }
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\n(mean response in seconds; paper shape: RND needs threshold "
               ">= 0.5 h\n to stay under ~10 s, Pack_Disk(4) low and flat)\n";
  return 0;
}
