// bench_common.h — shared plumbing for the figure benches.
//
// Every bench binary accepts:
//   --help         print usage and exit
//   --csv <path>   also write the series as CSV
//   --seed <n>     override the experiment seed
//   --full         run the paper's dense grid (default grids are coarsened
//                  so the whole suite completes in minutes)
//   --threads <n>  parallel sweep width (default: hardware)
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/units.h"

namespace spindown::bench {

struct BenchOptions {
  std::optional<std::string> csv_path;
  std::uint64_t seed = 1;
  bool full = false;
  unsigned threads = 0;

  static BenchOptions parse(int argc, char** argv) {
    const util::Cli cli{argc, argv};
    if (cli.has("help")) {
      std::cout << "usage: " << cli.program()
                << " [--csv <path>] [--seed <n>] [--full] [--threads <n>]\n";
      std::exit(0);
    }
    BenchOptions o;
    if (cli.has("csv")) o.csv_path = cli.get("csv", "bench.csv");
    o.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    o.full = cli.has("full");
    o.threads = static_cast<unsigned>(cli.get_int("threads", 0));
    return o;
  }

  std::unique_ptr<util::CsvWriter> csv() const {
    if (!csv_path.has_value()) return nullptr;
    return std::make_unique<util::CsvWriter>(
        std::filesystem::path{*csv_path});
  }
};

inline void print_header(const std::string& title, const std::string& source) {
  std::cout << "== " << title << " ==\n";
  std::cout << "   reproduces: " << source << "\n\n";
}

} // namespace spindown::bench
