// bench_common.h — shared plumbing for the figure benches.
//
// Every bench binary accepts:
//   --help         print usage and exit
//   --csv <path>   also write the series as CSV
//   --json <path>  also write the series as JSON (machine-readable rows;
//                  the committed BENCH_*.json baselines are made this way)
//   --seed <n>     override the experiment seed
//   --full         run the paper's dense grid (default grids are coarsened
//                  so the whole suite completes in minutes)
//   --threads <n>  parallel sweep width (default: hardware)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/units.h"

namespace spindown::bench {

/// A pre-rendered JSON scalar; implicit constructors keep row() call sites
/// terse: writer.row({{"policy", "ewma"}, {"energy_j", 1234.5}}).
class JsonValue {
public:
  JsonValue(const char* s) : rendered_(quote(s)) {}                // NOLINT
  JsonValue(const std::string& s) : rendered_(quote(s)) {}         // NOLINT
  JsonValue(bool b) : rendered_(b ? "true" : "false") {}           // NOLINT
  JsonValue(double v) {                                            // NOLINT
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    rendered_ = buf;
  }
  JsonValue(int v) : rendered_(std::to_string(v)) {}               // NOLINT
  JsonValue(unsigned v) : rendered_(std::to_string(v)) {}          // NOLINT
  JsonValue(std::uint64_t v) : rendered_(std::to_string(v)) {}     // NOLINT
  JsonValue(std::int64_t v) : rendered_(std::to_string(v)) {}      // NOLINT

  const std::string& rendered() const { return rendered_; }

private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out + "\"";
  }

  std::string rendered_;
};

/// Machine-readable bench output: a top-level object with the run's
/// provenance (bench name, quick/full, seed) plus optional meta fields, and
/// a "rows" array of flat objects — one per table row.  Rows are buffered
/// and the file is written by finish() (or the destructor).
class JsonWriter {
public:
  using Fields = std::initializer_list<std::pair<const char*, JsonValue>>;

  /// Opens the file eagerly so a bad path fails loudly up front (matching
  /// util::CsvWriter) instead of silently discarding the whole run.
  JsonWriter(std::filesystem::path path, std::string bench, bool quick,
             std::uint64_t seed)
      : out_(path), bench_(std::move(bench)), quick_(quick), seed_(seed) {
    if (!out_.is_open()) {
      throw std::runtime_error{"JsonWriter: cannot open " + path.string()};
    }
  }

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;
  ~JsonWriter() { finish(); }

  /// Extra top-level field (scenario parameters, derived verdicts, ...).
  void meta(const std::string& key, JsonValue value) {
    meta_.emplace_back(key, value.rendered());
  }

  void row(Fields fields) {
    std::string line = "    {";
    bool first = true;
    for (const auto& [key, value] : fields) {
      if (!first) line += ", ";
      first = false;
      line += JsonValue{key}.rendered();
      line += ": ";
      line += value.rendered();
    }
    line += "}";
    rows_.push_back(std::move(line));
  }

  void finish() {
    if (done_) return;
    done_ = true;
    out_ << "{\n";
    out_ << "  \"bench\": " << JsonValue{bench_}.rendered() << ",\n";
    out_ << "  \"quick\": " << (quick_ ? "true" : "false") << ",\n";
    out_ << "  \"seed\": " << seed_ << ",\n";
    for (const auto& [key, rendered] : meta_) {
      out_ << "  " << JsonValue{key}.rendered() << ": " << rendered << ",\n";
    }
    out_ << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out_ << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    out_ << "  ]\n}\n";
  }

private:
  std::ofstream out_;
  std::string bench_;
  bool quick_;
  std::uint64_t seed_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::string> rows_;
  bool done_ = false;
};

struct BenchOptions {
  std::optional<std::string> csv_path;
  std::optional<std::string> json_path;
  std::uint64_t seed = 1;
  bool full = false;
  unsigned threads = 0;

  static BenchOptions parse(int argc, char** argv) {
    const util::Cli cli{argc, argv};
    if (cli.has("help")) {
      std::cout << "usage: " << cli.program()
                << " [--csv <path>] [--json <path>] [--seed <n>] [--full]"
                   " [--threads <n>]\n";
      std::exit(0);
    }
    BenchOptions o;
    if (cli.has("csv")) o.csv_path = cli.get("csv", "bench.csv");
    if (cli.has("json")) o.json_path = cli.get("json", "bench.json");
    o.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    o.full = cli.has("full");
    o.threads = static_cast<unsigned>(cli.get_int("threads", 0));
    return o;
  }

  std::unique_ptr<util::CsvWriter> csv() const {
    if (!csv_path.has_value()) return nullptr;
    return std::make_unique<util::CsvWriter>(
        std::filesystem::path{*csv_path});
  }

  /// nullptr unless --json was given.  `bench` is the binary's short name;
  /// `quick` whatever coarse/dense flag the bench runs under.
  std::unique_ptr<JsonWriter> json(const std::string& bench,
                                   bool quick) const {
    if (!json_path.has_value()) return nullptr;
    return std::make_unique<JsonWriter>(std::filesystem::path{*json_path},
                                        bench, quick, seed);
  }
};

inline void print_header(const std::string& title, const std::string& source) {
  std::cout << "== " << title << " ==\n";
  std::cout << "   reproduces: " << source << "\n\n";
}

} // namespace spindown::bench
