// alloc_complexity.cpp — Lemma 7's complexity claim, measured.
//
// google-benchmark comparison of the O(n log n) Pack_Disks against the
// O(n^2)-style Chang–Hwang–Park reference on identical instances (identical
// outputs — see tests/core/equivalence_test.cpp).  The asymptotic gap shows
// up directly in the reported complexity fits (BigO).
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/chang_reference.h"
#include "core/pack_disks.h"
#include "util/rng.h"

namespace {

using namespace spindown;

std::vector<core::Item> make_instance(std::size_t n, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<core::Item> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i].index = static_cast<std::uint32_t>(i);
    // Small coordinates: many items per disk, the regime where the naive
    // member-list rescans in the reference implementation hurt most.
    items[i].s = rng.uniform(1e-4, 0.02);
    items[i].l = rng.uniform(1e-4, 0.02);
  }
  return items;
}

void BM_PackDisks(benchmark::State& state) {
  const auto items = make_instance(static_cast<std::size_t>(state.range(0)), 7);
  core::PackDisks pack;
  for (auto _ : state) {
    auto a = pack.allocate(items);
    benchmark::DoNotOptimize(a.disk_count);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PackDisks)->RangeMultiplier(2)->Range(1 << 10, 1 << 16)
    ->Complexity(benchmark::oNLogN);

void BM_ChangHwangPark(benchmark::State& state) {
  const auto items = make_instance(static_cast<std::size_t>(state.range(0)), 7);
  core::ChangHwangPark reference;
  for (auto _ : state) {
    auto a = reference.allocate(items);
    benchmark::DoNotOptimize(a.disk_count);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChangHwangPark)->RangeMultiplier(2)->Range(1 << 10, 1 << 13)
    ->Complexity();

// The paper's actual instance shape: Table 1's Zipf-correlated items.
void BM_PackDisksPaperInstance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng{11};
  std::vector<core::Item> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double rank = static_cast<double>(i + 1);
    items[i].index = static_cast<std::uint32_t>(i);
    items[i].s = 0.04 / std::pow(static_cast<double>(n) - rank + 1.0, 0.4425);
    items[i].l = 0.03 / std::pow(rank, 0.4425);
  }
  core::PackDisks pack;
  for (auto _ : state) {
    auto a = pack.allocate(items);
    benchmark::DoNotOptimize(a.disk_count);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PackDisksPaperInstance)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 16)
    ->Complexity(benchmark::oNLogN);

} // namespace

BENCHMARK_MAIN();
