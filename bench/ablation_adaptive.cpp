// ablation_adaptive.cpp — adaptive spin-down policies × non-stationary
// workloads.
//
// The paper fixes the idleness threshold offline (break-even by default,
// swept in Figures 5/6), which is the right answer only when the workload
// is stationary.  This ablation crosses the online policies of src/adapt/
// with workloads whose rate moves:
//
//   * stationary  — Table-1-style Poisson at the busy rate.  The adaptive
//     policies must match break-even here (they have nothing to adapt to).
//   * diurnal     — a periodic NHPP with three phases per cycle: busy
//     (idle gaps far below break-even), shoulder (gaps *around* break-even
//     — the fixed policy's dead zone, where spinning down loses energy and
//     delays the next arrival), and night (gaps far above break-even,
//     where waiting out the threshold at idle power is pure waste).
//   * bursty      — a 2-state MMPP alternating shoulder-grade bursts with
//     deep lulls: every visit to the burst state parks the fixed policy in
//     its dead zone, every lull rewards parking immediately.
//
// Baselines: break-even, the e/(e-1) randomized policy, and "fixed-best" —
// the per-scenario winner of an *offline* sweep over fixed thresholds
// (lowest energy among thresholds whose mean response stays within 2% of
// break-even's), i.e. the paper's Figure-5/6 methodology applied per
// scenario.  The adaptive policies get no such oracle: they see each
// scenario once, online.
//
//   $ ./ablation_adaptive [--quick] [--csv g.csv] [--json BENCH_adaptive.json]
//     [--seed 1] [--threads n] [--slo 30]
//
// The committed BENCH_adaptive.json baseline is the full (non-quick) run;
// regenerate with:  ./ablation_adaptive --json BENCH_adaptive.json
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/normalize.h"
#include "core/pack_disks.h"
#include "sys/experiment.h"
#include "sys/sweep.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/catalog.h"

namespace {

using namespace spindown;

struct PolicyRow {
  std::string label;
  sys::PolicySpec policy;
  bool adaptive = false;
};

struct ScenarioResult {
  std::string scenario;
  std::string workload_key;
  std::vector<PolicyRow> rows;
  std::vector<sys::RunResult> results; ///< parallel to rows
};

double total_energy(const sys::RunResult& r) { return r.power.energy; }

} // namespace

int main(int argc, char** argv) {
  const util::Cli cli{argc, argv};
  if (cli.has("help")) {
    std::cout << "usage: " << cli.program()
              << " [--quick] [--csv <path>] [--json <path>] [--seed <n>]"
                 " [--threads <n>] [--slo <s>]\n"
                 "adaptive spin-down policy x non-stationary workload grid\n";
    return 0;
  }
  const bool quick = cli.has("quick");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));
  const double slo = cli.get_double("slo", 12.0);

  // Catalog: Table-1 popularity, sizes capped at 32 MB so service times are
  // sub-second and the idle-gap structure (not transfer time) drives the
  // trade-off.
  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = quick ? 500 : 1500;
  spec.max_size = util::mb(32.0);
  util::Rng rng{seed};
  const auto catalog = workload::generate_catalog(spec, rng);

  // Pack at a deliberately low load fraction: spin-down economics only
  // exist on mostly-idle disks (the MAID premise), and the busy-phase
  // per-disk idle gap is approximately E[service]/load_fraction.
  const double busy_rate = quick ? 1.5 : 3.0;
  core::LoadModel model;
  model.rate = busy_rate;
  model.load_fraction = 0.025;
  core::PackDisks pack;
  const auto assignment = pack.allocate(core::normalize(catalog, model));
  const std::uint32_t farm = assignment.disk_count;

  const disk::DiskParams params = disk::DiskParams::st3500630as();
  const double B = params.break_even_threshold();

  // Phase rates from per-disk idle-gap targets: the average per-disk
  // arrival rate is (system rate)/farm, so a target mean gap g implies a
  // system rate of farm/g.  Busy sits far below break-even, shoulder rides
  // the dead zone just past it, night sits far above.
  const double gap_busy = static_cast<double>(farm) / busy_rate;
  const double shoulder_rate = static_cast<double>(farm) / 65.0;
  const double night_rate = static_cast<double>(farm) / (quick ? 250.0 : 350.0);
  const double lull_rate = static_cast<double>(farm) / (quick ? 500.0 : 450.0);

  const double phase_s = quick ? 1500.0 : 3000.0;
  const double period = 3.0 * phase_s;
  const double horizon = (quick ? 2.0 : 3.0) * period;

  const std::vector<workload::RateSegment> diurnal{
      {0.0, busy_rate}, {phase_s, shoulder_rate}, {2.0 * phase_s, night_rate}};
  // Shoulder-grade bursts against deep lulls: both regimes where the fixed
  // break-even threshold is wrong, in opposite directions — it keeps paying
  // unprofitable parks during bursts and keeps idling out the full
  // threshold during lulls.
  workload::MmppParams burst;
  burst.rate = {shoulder_rate, lull_rate};
  burst.mean_dwell = {phase_s / 2.0, phase_s};

  struct Scenario {
    std::string name;
    sys::WorkloadSpec workload;
  };
  const std::vector<Scenario> scenarios{
      {"stationary", sys::WorkloadSpec::poisson(busy_rate, horizon)},
      {"diurnal", sys::WorkloadSpec::nhpp(diurnal, horizon, period)},
      {"bursty", sys::WorkloadSpec::mmpp(burst, horizon)},
  };

  // The offline fixed-threshold sweep that defines "fixed-best".
  const std::vector<double> fixed_grid{0.0,     B / 8.0, B / 4.0, B / 2.0,
                                       B,       1.5 * B, 2.0 * B, 3.0 * B};
  std::vector<PolicyRow> policy_rows{
      {"break-even", sys::PolicySpec::break_even(), false},
      {"randomized", sys::PolicySpec::randomized(), false},
      {"ewma", sys::PolicySpec::ewma(), true},
      {"share", sys::PolicySpec::share(), true},
      {"slack", sys::PolicySpec::slack(slo), true},
  };

  auto config_for = [&](const Scenario& s, const sys::PolicySpec& policy,
                        const std::string& label) {
    sys::ExperimentConfig cfg;
    cfg.label = s.name + " x " + label;
    cfg.catalog = &catalog;
    cfg.mapping = assignment.disk_of;
    cfg.num_disks = farm;
    cfg.policy = policy;
    cfg.workload = s.workload;
    cfg.seed = seed;
    return cfg;
  };

  std::vector<sys::ExperimentConfig> configs;
  for (const auto& s : scenarios) {
    for (const double t : fixed_grid) {
      configs.push_back(config_for(s, sys::PolicySpec::fixed(t), "fixed"));
    }
    for (const auto& row : policy_rows) {
      configs.push_back(config_for(s, row.policy, row.label));
    }
  }

  bench::print_header("Adaptive spin-down x non-stationary workloads",
                      "beyond the paper: online threshold adaptation");
  std::cout << "catalog: " << catalog.size() << " files, "
            << util::format_bytes(catalog.total_bytes()) << " on " << farm
            << " disks; busy gap ~" << util::format_seconds(gap_busy)
            << "/disk, shoulder ~65 s, night ~"
            << util::format_seconds(static_cast<double>(farm) / night_rate)
            << " (break-even " << util::format_seconds(B) << ")\n"
            << "horizon " << util::format_seconds(horizon)
            << ", slack SLO p99 < " << util::format_seconds(slo) << "\n\n";

  const auto all_results = sys::run_sweep(configs, threads);

  util::CsvWriter* csv = nullptr;
  std::unique_ptr<util::CsvWriter> csv_holder;
  if (cli.has("csv")) {
    csv_holder = std::make_unique<util::CsvWriter>(
        std::filesystem::path{cli.get("csv", "ablation_adaptive.csv")});
    csv = csv_holder.get();
    csv->write_row({"scenario", "policy", "workload", "energy_j",
                    "saving_vs_always_on", "mean_resp_s", "p95_resp_s",
                    "p99_resp_s", "spin_downs", "spin_ups", "requests"});
  }
  std::unique_ptr<bench::JsonWriter> json;
  if (cli.has("json")) {
    json = std::make_unique<bench::JsonWriter>(
        std::filesystem::path{cli.get("json", "BENCH_adaptive.json")},
        "ablation_adaptive", quick, seed);
    json->meta("farm_disks", static_cast<std::uint64_t>(farm));
    json->meta("break_even_s", B);
    json->meta("slo_p99_s", slo);
    json->meta("horizon_s", horizon);
  }

  // Per-scenario reporting: resolve fixed-best, print the table, emit rows,
  // and collect the acceptance verdicts.
  bool nonstationary_dominated = true;
  bool stationary_within_10pct = true;
  std::size_t idx = 0;
  for (const auto& s : scenarios) {
    std::vector<sys::RunResult> fixed_results;
    for (std::size_t i = 0; i < fixed_grid.size(); ++i) {
      fixed_results.push_back(all_results[idx++]);
    }
    std::vector<sys::RunResult> named_results;
    for (std::size_t i = 0; i < policy_rows.size(); ++i) {
      named_results.push_back(all_results[idx++]);
    }
    const auto& be = named_results[0]; // break-even is row 0

    // Fixed-best: lowest energy among thresholds whose mean response stays
    // within 2% of break-even's (T = B is in the grid, so the set is never
    // empty).
    std::size_t best = 0;
    bool have_best = false;
    for (std::size_t i = 0; i < fixed_grid.size(); ++i) {
      if (fixed_results[i].response.mean() > be.response.mean() * 1.02) {
        continue;
      }
      if (!have_best ||
          total_energy(fixed_results[i]) < total_energy(fixed_results[best])) {
        best = i;
        have_best = true;
      }
    }

    std::cout << "--- " << s.name << "  [" << s.workload.spec() << "]\n";
    util::TablePrinter table{{"policy", "energy (kJ)", "saving",
                              "mean resp (s)", "p95 (s)", "p99 (s)",
                              "spin-downs", "spin-ups"}};
    auto emit = [&](const std::string& label, const std::string& key,
                    const sys::RunResult& r, bool adaptive) {
      table.row(label, util::format_double(r.power.energy / 1000.0, 1),
                util::format_double(r.power.saving_vs_always_on, 4),
                util::format_double(r.response.mean(), 3),
                util::format_double(r.response.p95(), 3),
                util::format_double(r.response.p99(), 3), r.power.spin_downs,
                r.power.spin_ups);
      if (csv != nullptr) {
        csv->row(s.name, key, s.workload.spec(), r.power.energy,
                 r.power.saving_vs_always_on, r.response.mean(),
                 r.response.p95(), r.response.p99(), r.power.spin_downs,
                 r.power.spin_ups, r.requests);
      }
      if (json != nullptr) {
        json->row({{"scenario", s.name},
                   {"policy", key},
                   {"adaptive", adaptive},
                   {"workload", s.workload.spec()},
                   {"energy_j", r.power.energy},
                   {"saving_vs_always_on", r.power.saving_vs_always_on},
                   {"mean_resp_s", r.response.mean()},
                   {"p95_resp_s", r.response.p95()},
                   {"p99_resp_s", r.response.p99()},
                   {"spin_downs", r.power.spin_downs},
                   {"spin_ups", r.power.spin_ups},
                   {"requests", r.requests}});
      }
    };

    const std::string best_label =
        "fixed-best(" +
        util::format_seconds(have_best ? fixed_grid[best] : B) + ")";
    emit(best_label, sys::PolicySpec::fixed(fixed_grid[best]).spec(),
         fixed_results[best], false);
    for (std::size_t i = 0; i < policy_rows.size(); ++i) {
      emit(policy_rows[i].label, policy_rows[i].policy.spec(),
           named_results[i], policy_rows[i].adaptive);
    }
    table.print(std::cout);

    // Verdicts vs. break-even.
    if (s.name == "stationary") {
      for (std::size_t i = 0; i < policy_rows.size(); ++i) {
        if (!policy_rows[i].adaptive) continue;
        const auto& r = named_results[i];
        const double de =
            std::abs(total_energy(r) / total_energy(be) - 1.0);
        const double dr =
            std::abs(r.response.mean() / std::max(1e-12, be.response.mean()) -
                     1.0);
        const bool ok = de <= 0.10 && dr <= 0.10;
        stationary_within_10pct = stationary_within_10pct && ok;
        std::cout << "  " << policy_rows[i].label << ": energy "
                  << util::format_double(100.0 * de, 2) << "% / resp "
                  << util::format_double(100.0 * dr, 2)
                  << "% off break-even" << (ok ? "" : "  ** >10% **") << "\n";
      }
    } else {
      std::string dominator;
      for (std::size_t i = 0; i < policy_rows.size(); ++i) {
        if (!policy_rows[i].adaptive) continue;
        const auto& r = named_results[i];
        const bool energy_dom = total_energy(r) < total_energy(be) &&
                                r.response.mean() <= be.response.mean();
        const bool resp_dom = r.response.mean() < be.response.mean() &&
                              total_energy(r) <= total_energy(be);
        if (energy_dom || resp_dom) {
          if (!dominator.empty()) dominator += ", ";
          dominator += policy_rows[i].label;
        }
      }
      if (dominator.empty()) nonstationary_dominated = false;
      std::cout << "  dominates break-even: "
                << (dominator.empty() ? std::string{"(none)"} : dominator)
                << "\n";
    }
    std::cout << "\n";
  }

  std::cout << "acceptance: non-stationary scenarios each dominated by an "
               "adaptive policy: "
            << (nonstationary_dominated ? "yes" : "NO")
            << "; stationary parity within 10%: "
            << (stationary_within_10pct ? "yes" : "NO") << "\n";
  if (json != nullptr) {
    json->meta("nonstationary_dominated", nonstationary_dominated);
    json->meta("stationary_within_10pct", stationary_within_10pct);
    json->finish();
  }
  // Nonzero exit on a failed verdict so the CI perf-smoke step catches a
  // regression of the adaptive policies, not just a crash.
  return nonstationary_dominated && stationary_within_10pct ? 0 : 1;
}
