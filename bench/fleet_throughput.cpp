// fleet_throughput.cpp — fleet-scale scaling study of the sharded simulator.
//
// One scenario, thousands of disks: a synthetic farm at ~0.6 per-disk
// utilization (24.4 req/s per spindle — 1e5 req/s aggregate at 4096 disks)
// is run through the single-calendar path and through both sys/fleet.h
// pipelines at 2/4/8 shards:
//
//   path=single  shards=1, the plain StorageSystem calendar (baseline)
//   path=local   the routerless fast path (cache=none farms qualify):
//                workers generate arrivals shard-locally, no router thread
//   path=routed  the pipelined router (forced here for comparison; it is
//                what any cache-ful scenario gets), SPSC rings + recycled
//                batch arenas
//
// Self-timed (std::chrono); each row reports calendar events executed,
// wall-clock, events/s and the wall-clock speedup over shards=1 at the
// same scale.  Every sharded run is also checked bit-for-bit against the
// single-calendar result (energy, response mean/count, spin-ups), so the
// bench doubles as a large-scale determinism smoke test across both
// pipelines.  --json additionally emits one kind="shard" row per shard
// with the FleetPerf counters (submissions, batches, events, ring
// high-water, worker busy/wait), so routing regressions are diagnosable
// from BENCH_fleet.json alone.
//
// `events` is an engine statistic, not a physical result: the fleet paths
// pre-route arrivals instead of scheduling them as calendar events, so the
// sharded rows execute fewer events for the same physics.  events/s is
// therefore comparable within a shard count, wall-clock across all of them.
//
// Usage:
//   fleet_throughput [--quick] [--force-router] [--reps <n>] [--json <path>]
//                    [--seed <n>]
//
// --quick shrinks the farm sizes and horizons to a smoke-test size (CI runs
// this; timing is not asserted).  --force-router drops the path=local rows
// and exercises only the router pipeline (CI runs this variant too, so
// both pipelines stay covered even where classification would pick the
// fast path).  BENCH_fleet.json at the repo root is the committed snapshot
// regenerated via:
//   ./build/bench/fleet_throughput --json BENCH_fleet.json
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "sys/experiment.h"
#include "sys/fleet.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/catalog.h"

namespace {

using namespace spindown;

/// ~0.6 utilization per ST3500630AS spindle: mean service is one average
/// positioning (~18 ms) plus a 512 KB transfer (~6.6 ms).
constexpr double kRatePerDisk = 24.4;

workload::FileCatalog farm_catalog(std::uint32_t disks) {
  // Four 512 KB files per disk, uniformly popular: the request mix is
  // dominated by positioning + short transfers, like a busy fleet.
  std::vector<workload::FileInfo> files(4ull * disks);
  for (std::size_t i = 0; i < files.size(); ++i) {
    files[i].id = static_cast<workload::FileId>(i);
    files[i].size = static_cast<util::Bytes>(util::mb(0.5));
    files[i].popularity = 1.0 / static_cast<double>(files.size());
  }
  return workload::FileCatalog{files};
}

struct Row {
  std::uint32_t disks = 0;
  std::uint32_t shards = 0;
  std::string path;
  double rate = 0.0;
  double horizon_s = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t events = 0;
  double wall_s = 0.0;
  double speedup = 0.0; ///< wall(shards=1) / wall(this row), same scale
  bool identical = false;

  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0.0; }
  double requests_per_sec() const {
    return wall_s > 0 ? requests / wall_s : 0.0;
  }
};

const char* path_name(sys::FleetPath path) {
  return path == sys::FleetPath::kShardLocal ? "local" : "routed";
}

} // namespace

int main(int argc, char** argv) {
  const util::Cli cli{argc, argv};
  if (cli.has("help")) {
    std::cout
        << "usage: " << cli.program()
        << " [--quick] [--force-router] [--reps <n>] [--json <path>]"
           " [--seed <n>]\n"
        << "Scales one scenario across 64/512/4096 disks and 1/2/4/8\n"
        << "calendar shards, on both fleet pipelines (routerless fast\n"
        << "path and pipelined router; --force-router keeps only the\n"
        << "latter); reports events/s and the wall-clock speedup over\n"
        << "the single calendar, and verifies every sharded result is\n"
        << "bit-identical to it.\n";
    return 0;
  }
  const bool quick = cli.has("quick");
  const bool force_router = cli.has("force-router");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  // Wall-clock per row is the best of `reps` runs: the simulation is
  // deterministic, so repetition only strips scheduler/cache noise from
  // the timing (the result is checked bit-identical on every rep).
  const int reps = std::max(
      1, static_cast<int>(cli.get_int("reps", quick ? 1 : 3)));
  // Measurement sized per scale so every farm processes the same request
  // volume: horizon = target / rate.
  const double target_requests = quick ? 2.0e4 : 4.0e5;
  const std::vector<std::uint32_t> farm_sizes =
      quick ? std::vector<std::uint32_t>{64, 512}
            : std::vector<std::uint32_t>{64, 512, 4096};
  const std::vector<std::uint32_t> shard_counts{1, 2, 4, 8};
  std::vector<sys::FleetPath> paths;
  if (!force_router) paths.push_back(sys::FleetPath::kShardLocal);
  paths.push_back(sys::FleetPath::kRouted);

  std::cout << "== fleet_throughput ==\n"
            << "   " << (quick ? "--quick" : "full")
            << (force_router ? ", --force-router" : "") << "; "
            << kRatePerDisk << " req/s per disk, ~"
            << static_cast<std::uint64_t>(target_requests)
            << " requests per scale; " << std::thread::hardware_concurrency()
            << " hardware thread(s)\n\n";

  auto json = cli.has("json")
                  ? std::make_unique<bench::JsonWriter>(
                        cli.get("json", "BENCH_fleet.json"),
                        "fleet_throughput", quick, seed)
                  : nullptr;
  if (json != nullptr) {
    json->meta("rate_per_disk", kRatePerDisk);
    json->meta("target_requests", target_requests);
    json->meta("force_router", force_router);
    json->meta("reps", static_cast<std::int64_t>(reps));
    json->meta("hardware_threads",
               static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  }

  util::TablePrinter table{{"disks", "shards", "path", "requests", "events",
                            "wall (s)", "events/s", "req/s", "speedup",
                            "identical"}};
  bool all_identical = true;

  for (const std::uint32_t disks : farm_sizes) {
    const auto catalog = farm_catalog(disks);
    const double rate = kRatePerDisk * disks;
    const double horizon = target_requests / rate;

    sys::ExperimentConfig cfg;
    cfg.catalog = &catalog;
    cfg.mapping.resize(catalog.size());
    for (std::size_t i = 0; i < cfg.mapping.size(); ++i) {
      cfg.mapping[i] = static_cast<std::uint32_t>(i % disks);
    }
    cfg.num_disks = disks;
    cfg.workload = sys::WorkloadSpec::poisson(rate, horizon);
    cfg.seed = seed;

    // Baseline: the single calendar (shards=1 takes the StorageSystem
    // path inside run_experiment).
    cfg.shards = 1;
    sys::RunResult baseline;
    double baseline_wall = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const auto b0 = std::chrono::steady_clock::now();
      baseline = sys::run_experiment(cfg);
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - b0)
                              .count();
      baseline_wall = rep == 0 ? wall : std::min(baseline_wall, wall);
    }

    const auto emit = [&](const Row& row, const sys::FleetPerf* perf) {
      table.add_row({std::to_string(row.disks), std::to_string(row.shards),
                     row.path, std::to_string(row.requests),
                     std::to_string(row.events),
                     util::format_double(row.wall_s, 3),
                     util::format_double(row.events_per_sec(), 0),
                     util::format_double(row.requests_per_sec(), 0),
                     util::format_double(row.speedup, 2),
                     row.identical ? "yes" : "NO"});
      if (json == nullptr) return;
      json->row({{"kind", "run"},
                 {"disks", row.disks},
                 {"shards", row.shards},
                 {"path", row.path},
                 {"rate_req_per_s", row.rate},
                 {"horizon_s", row.horizon_s},
                 {"requests", row.requests},
                 {"events", row.events},
                 {"wall_s", row.wall_s},
                 {"events_per_sec", row.events_per_sec()},
                 {"requests_per_sec", row.requests_per_sec()},
                 {"speedup_vs_single", row.speedup},
                 {"identical_to_single", row.identical},
                 {"workers", perf != nullptr ? perf->workers : 1u},
                 {"router_busy_s", perf != nullptr ? perf->router_busy_s : 0.0},
                 {"router_stall_s",
                  perf != nullptr ? perf->router_stall_s : 0.0}});
      if (perf == nullptr) return;
      for (const auto& s : perf->per_shard) {
        // Worker timings index workers, not shards; they coincide on the
        // routed path (one worker per shard).  On the fast path a worker
        // may drive several shards, so charge its times to each shard it
        // owns (shard s belongs to worker s % workers by construction).
        const std::size_t w = s.shard % perf->workers;
        json->row(
            {{"kind", "shard"},
             {"disks", row.disks},
             {"shards", row.shards},
             {"path", row.path},
             {"shard", s.shard},
             {"submissions", s.submissions},
             {"batches", s.batches},
             {"events", s.events},
             {"events_per_sec",
              row.wall_s > 0 ? s.events / row.wall_s : 0.0},
             {"ring_high_water", static_cast<std::uint64_t>(s.ring_high_water)},
             {"worker_busy_s", perf->worker_busy_s[w]},
             {"worker_wait_s", perf->worker_wait_s[w]}});
      }
    };

    {
      Row row;
      row.disks = disks;
      row.shards = 1;
      row.path = "single";
      row.rate = rate;
      row.horizon_s = horizon;
      row.requests = baseline.requests;
      row.events = baseline.events;
      row.wall_s = baseline_wall;
      row.speedup = 1.0;
      row.identical = true;
      emit(row, nullptr);
    }

    for (const std::uint32_t shards : shard_counts) {
      if (shards == 1) continue; // the single-calendar row above
      for (const sys::FleetPath path : paths) {
        sys::FleetPerf perf;
        sys::RunResult result;
        double wall = 0.0;
        for (int rep = 0; rep < reps; ++rep) {
          const auto t0 = std::chrono::steady_clock::now();
          result = sys::run_fleet(cfg, shards, path, &perf);
          const double rep_wall = std::chrono::duration<double>(
                                      std::chrono::steady_clock::now() - t0)
                                      .count();
          wall = rep == 0 ? rep_wall : std::min(wall, rep_wall);
        }

        Row row;
        row.disks = disks;
        row.shards = shards;
        row.path = path_name(path);
        row.rate = rate;
        row.horizon_s = horizon;
        row.requests = result.requests;
        row.events = result.events;
        row.wall_s = wall;
        row.speedup = row.wall_s > 0 ? baseline_wall / row.wall_s : 0.0;
        row.identical =
            result.power.energy == baseline.power.energy &&
            result.power.saving_vs_always_on ==
                baseline.power.saving_vs_always_on &&
            result.response.count() == baseline.response.count() &&
            result.response.mean() == baseline.response.mean() &&
            result.response.max() == baseline.response.max() &&
            result.power.spin_ups == baseline.power.spin_ups &&
            result.requests == baseline.requests;
        all_identical = all_identical && row.identical;
        emit(row, &perf);
      }
    }
  }

  table.print(std::cout);
  std::cout << "\ndeterminism: "
            << (all_identical
                    ? "every sharded run bit-identical to shards=1, on "
                      "every pipeline"
                    : "MISMATCH against shards=1 (bug)")
            << "\n";
  if (json != nullptr) {
    json->meta("all_identical", all_identical);
    json->finish();
    std::cout << "wrote " << cli.get("json", "BENCH_fleet.json") << "\n";
  }
  return all_identical ? 0 : 1;
}
