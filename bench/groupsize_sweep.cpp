// groupsize_sweep.cpp — §5.1's closing experiment: Pack_Disk_v for v = 1..8.
//
// "to observe the effect of Pack_Disk_v with different values of v, we
//  measured the response time and power saving ratio of Pack_Disk_v when v
//  is changed from 1 to 8 ... The results reveal 4 is the ideal number of
//  disks to be packed concurrently, because packing disks more than 4 in
//  one time no more reduces response time but degrades the capability of
//  power saving."
//
// The idleness threshold is fixed at 0.5 h, per the paper.  The trace is a
// batch-heavy NERSC synthesis (batches are what v disperses).
#include <iostream>

#include "bench_common.h"
#include "paper_workload.h"

int main(int argc, char** argv) {
  using namespace spindown;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Pack_Disk_v group-size sweep (v = 1..8)",
                      "§5.1 closing text of Otoo/Rotem/Tsao, IPPS 2009");

  workload::NerscSpec spec = workload::NerscSpec::paper();
  spec.batch_fraction = 0.30; // pronounced batching — the case v targets
  spec.batch_min = 6;
  spec.batch_max = 12;
  if (!opts.full) {
    // Scaled farm at the paper's per-disk arrival rate (30 days kept).
    spec.n_files = 20'000;
    spec.n_requests = 26'000;
  }
  std::cout << "synthesizing batch-heavy NERSC-like trace...\n\n";
  const auto trace = workload::synthesize_nersc(spec);

  core::LoadModel model;
  model.rate = static_cast<double>(trace.size()) / trace.duration();
  model.load_fraction = 0.8;
  const auto items = core::normalize(trace.catalog(), model);

  std::vector<sys::ExperimentConfig> configs;
  std::vector<std::uint32_t> disk_counts;
  for (std::size_t v = 1; v <= 8; ++v) {
    core::PackDisksGrouped pack{v};
    const auto a = pack.allocate(items);
    sys::ExperimentConfig cfg;
    cfg.label = pack.name();
    cfg.catalog = &trace.catalog();
    cfg.mapping = a.disk_of;
    cfg.num_disks = a.disk_count;
    cfg.policy = sys::PolicySpec::fixed(0.5 * util::kHour);
    cfg.workload = sys::WorkloadSpec::replay(trace);
    cfg.seed = opts.seed;
    configs.push_back(std::move(cfg));
    disk_counts.push_back(a.disk_count);
  }
  const auto results = sys::run_sweep(configs, opts.threads);

  util::TablePrinter table{{"v", "disks", "power saving", "mean resp (s)",
                            "p95 resp (s)", "p99 resp (s)"}};
  auto csv = opts.csv();
  if (csv) {
    csv->write_row({"v", "disks", "power_saving", "mean_resp_s", "p95_resp_s",
                    "p99_resp_s"});
  }
  for (std::size_t v = 1; v <= 8; ++v) {
    const auto& r = results[v - 1];
    table.row(v, disk_counts[v - 1],
              util::format_double(r.power.saving_vs_always_on, 3),
              util::format_double(r.response.mean(), 2),
              util::format_double(r.response.p95(), 2),
              util::format_double(r.response.p99(), 2));
    if (csv) {
      csv->row(v, disk_counts[v - 1], r.power.saving_vs_always_on,
               r.response.mean(), r.response.p95(), r.response.p99());
    }
  }
  table.print(std::cout);
  std::cout << "\n(paper finding: response improves up to v = 4, beyond "
               "which only\n power saving degrades)\n";
  return 0;
}
