// groupsize_sweep.cpp — §5.1's closing experiment: Pack_Disk_v for v = 1..8.
//
// "to observe the effect of Pack_Disk_v with different values of v, we
//  measured the response time and power saving ratio of Pack_Disk_v when v
//  is changed from 1 to 8 ... The results reveal 4 is the ideal number of
//  disks to be packed concurrently, because packing disks more than 4 in
//  one time no more reduces response time but degrades the capability of
//  power saving."
//
// The idleness threshold is fixed at 0.5 h, per the paper.  The trace is a
// batch-heavy NERSC synthesis (batches are what v disperses).
#include <iostream>

#include "bench_common.h"
#include "paper_workload.h"

int main(int argc, char** argv) {
  using namespace spindown;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Pack_Disk_v group-size sweep (v = 1..8)",
                      "§5.1 closing text of Otoo/Rotem/Tsao, IPPS 2009");

  workload::NerscSpec spec = bench::nersc_paper_spec(opts.full);
  spec.batch_fraction = 0.30; // pronounced batching — the case v targets
  spec.batch_min = 6;
  spec.batch_max = 12;
  std::cout << "synthesizing batch-heavy NERSC-like trace...\n\n";

  std::vector<sys::ScenarioSpec> scenarios;
  for (std::uint32_t v = 1; v <= 8; ++v) {
    sys::ScenarioSpec s;
    s.catalog = sys::CatalogSpec::nersc_synth(spec);
    s.placement = sys::PlacementSpec::grouped(v);
    s.load_fraction = 0.8;
    s.policy = sys::PolicySpec::fixed(0.5 * util::kHour);
    s.workload = sys::WorkloadSpec::replay_catalog();
    s.seed = opts.seed;
    scenarios.push_back(std::move(s));
  }
  const auto results = sys::run_scenarios(scenarios, opts.threads);

  util::TablePrinter table{{"v", "disks", "power saving", "mean resp (s)",
                            "p95 resp (s)", "p99 resp (s)"}};
  auto csv = opts.csv();
  if (csv) {
    csv->write_row({"v", "disks", "power_saving", "mean_resp_s", "p95_resp_s",
                    "p99_resp_s"});
  }
  for (std::size_t v = 1; v <= 8; ++v) {
    const auto& r = results[v - 1];
    const auto disks = r.per_disk.size();
    table.row(v, disks,
              util::format_double(r.power.saving_vs_always_on, 3),
              util::format_double(r.response.mean(), 2),
              util::format_double(r.response.p95(), 2),
              util::format_double(r.response.p99(), 2));
    if (csv) {
      csv->row(v, disks, r.power.saving_vs_always_on,
               r.response.mean(), r.response.p95(), r.response.p99());
    }
  }
  table.print(std::cout);
  std::cout << "\n(paper finding: response improves up to v = 4, beyond "
               "which only\n power saving degrades)\n";
  return 0;
}
