// table1_workload.cpp — Table 1: the synthetic workload's parameters,
// regenerated and checked against the published values.
#include <iostream>

#include "bench_common.h"
#include "core/normalize.h"
#include "paper_workload.h"
#include "util/math.h"

int main(int argc, char** argv) {
  using namespace spindown;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Synthetic workload parameters",
                      "Table 1 of Otoo/Rotem/Tsao, IPPS 2009");

  const auto catalog = bench::table1_catalog(opts.seed);
  const double theta = util::paper_zipf_theta();

  double pop_sum = 0.0;
  for (const auto& f : catalog.files()) pop_sum += f.popularity;

  util::TablePrinter table{{"parameter", "generated", "paper (Table 1)"}};
  table.row("n (files)", catalog.size(), "40000");
  table.row("theta = log0.6/log0.4", util::format_double(theta, 4), "~0.5575");
  table.row("popularity exponent (1-theta)",
            util::format_double(1.0 - theta, 4), "~0.4425");
  table.row("sum of p_i", util::format_double(pop_sum, 6), "1");
  table.row("min file size", util::format_bytes(catalog.min_size()), "188 MB");
  table.row("max file size", util::format_bytes(catalog.max_size()), "20 GB");
  table.row("total space", util::format_bytes(catalog.total_bytes()),
            "12.86 TB");
  table.row("number of disks", "100", "100");
  table.row("simulated time", "4000 s", "4000 sec");
  table.row("R sweep", "1..12 req/s (Poisson)", "1..12 (Poisson)");
  table.print(std::cout);

  // The emergent load picture the experiments rest on.
  std::cout << "\naggregate demand by arrival rate (disks of load at L=1):\n";
  util::TablePrinter demand{{"R", "load disks", "space disks"}};
  for (const double r : {1.0, 4.0, 6.0, 12.0}) {
    core::LoadModel model;
    model.rate = r;
    model.load_fraction = 1.0;
    const auto items = core::normalize(catalog, model);
    const auto u = core::utilization(items);
    demand.row(util::format_double(r, 0), util::format_double(u.load_disks, 1),
               util::format_double(u.space_disks, 1));
  }
  demand.print(std::cout);

  if (auto csv = opts.csv()) {
    csv->write_row({"parameter", "value"});
    csv->row("n_files", catalog.size());
    csv->row("min_size_bytes", catalog.min_size());
    csv->row("max_size_bytes", catalog.max_size());
    csv->row("total_bytes", catalog.total_bytes());
  }
  return 0;
}
