// fig3_response_ratio.cpp — Figure 3: response-time ratio vs. arrival rate.
//
// The series is  mean_response(Pack_Disks) / mean_response(random)  on the
// Table 1 workload for the same (R, L) grid as Figure 2.  The paper reports
// the ratio staying within roughly 0.5–2.5: packing concentrates queues
// (ratio above 1 as R grows), but random placement pays spin-up penalties
// that can push its own responses higher at low R (ratio below 1).
#include <iostream>

#include "bench_common.h"
#include "paper_workload.h"

int main(int argc, char** argv) {
  using namespace spindown;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Response-time ratio (Pack_Disks / random) vs. rate",
                      "Figure 3 of Otoo/Rotem/Tsao, IPPS 2009");

  // Always the full 40,000-file catalog: the farm/load balance of Table 1
  // depends on it (a smaller catalog inflates mean file size and overloads
  // the 100-disk farm at high R).  --full only densifies the sweep grid.
  const std::vector<double> rates =
      opts.full ? std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
                : std::vector<double>{1, 2, 4, 6, 8, 10, 12};
  const std::vector<double> loads{0.5, 0.6, 0.7, 0.8};

  std::vector<sys::ScenarioSpec> scenarios;
  for (const double r : rates) {
    scenarios.push_back(
        bench::random_scenario(r, bench::kPaperFarmDisks, opts.seed));
  }
  for (const double r : rates) {
    for (const double l : loads) {
      scenarios.push_back(
          bench::packed_scenario(r, l, bench::kPaperFarmDisks, opts.seed));
    }
  }
  const auto results = sys::run_scenarios(scenarios, opts.threads);

  util::TablePrinter table{{"R (req/s)", "L=50%", "L=60%", "L=70%", "L=80%",
                            "rnd mean resp"}};
  auto csv = opts.csv();
  if (csv) csv->write_row({"rate", "load_fraction", "response_time_ratio"});

  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    const auto& rnd = results[ri];
    std::vector<std::string> row{util::format_double(rates[ri], 0)};
    for (std::size_t li = 0; li < loads.size(); ++li) {
      const auto& packed = results[rates.size() + ri * loads.size() + li];
      const double ratio = rnd.response.mean() > 0.0
                               ? packed.response.mean() / rnd.response.mean()
                               : 0.0;
      row.push_back(util::format_double(ratio, 3));
      if (csv) csv->row(rates[ri], loads[li], ratio);
    }
    row.push_back(util::format_seconds(rnd.response.mean()));
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout
      << "\n(paper shape: ratio roughly within 0.5-2.5 across the grid)\n";
  return 0;
}
