// bound_quality.cpp — Theorem 1 in practice: disks used vs. the lower bound
// and the checkable guarantee, across instance families and rho values, with
// the greedy baselines alongside.
#include <iostream>

#include "bench_common.h"
#include "core/bounds.h"
#include "core/chang_reference.h"
#include "core/greedy.h"
#include "core/pack_disks.h"
#include "util/rng.h"

namespace {

using namespace spindown;

std::vector<core::Item> uniform_instance(std::size_t n, double max_coord,
                                         std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<core::Item> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i].index = static_cast<std::uint32_t>(i);
    items[i].s = rng.uniform(1e-6, max_coord);
    items[i].l = rng.uniform(1e-6, max_coord);
  }
  return items;
}

} // namespace

int main(int argc, char** argv) {
  using namespace spindown;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Packing quality vs. Theorem 1 bounds",
                      "Theorem 1 of Otoo/Rotem/Tsao, IPPS 2009");

  const std::size_t n = opts.full ? 50'000 : 10'000;
  util::TablePrinter table{{"rho", "lower bound", "pack_disks", "ffd",
                            "best_fit", "guarantee", "pack/LB"}};
  auto csv = opts.csv();
  if (csv) {
    csv->write_row(
        {"rho", "lower_bound", "pack_disks", "ffd", "best_fit", "guarantee"});
  }

  for (const double max_coord : {0.01, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    const auto items = uniform_instance(n, max_coord, opts.seed);
    const auto report = core::bound_report(items);

    core::PackDisks pack;
    core::FirstFitDecreasing ffd;
    core::BestFit bf;
    const auto a_pack = pack.allocate(items);
    const auto a_ffd = ffd.allocate(items);
    const auto a_bf = bf.allocate(items);

    table.row(util::format_double(report.rho, 3), report.lower_bound,
              a_pack.disk_count, a_ffd.disk_count, a_bf.disk_count,
              util::format_double(report.guarantee, 1),
              util::format_double(static_cast<double>(a_pack.disk_count) /
                                      std::max(1u, report.lower_bound),
                                  3));
    if (csv) {
      csv->row(report.rho, report.lower_bound, a_pack.disk_count,
               a_ffd.disk_count, a_bf.disk_count, report.guarantee);
    }
    if (!core::within_guarantee(report, a_pack.disk_count)) {
      std::cerr << "VIOLATION of Theorem 1 at rho=" << report.rho << "\n";
      return 1;
    }
  }
  table.print(std::cout);
  std::cout << "\n(pack_disks stays within the guarantee everywhere and close "
               "to the\n lower bound for small rho)\n";
  return 0;
}
