// ablation_policies.cpp — design-choice ablations beyond the paper's grid.
//
// Three studies on the scaled NERSC workload with Pack_Disks placement:
//   1. Spin-down policy family (§2's related work, made concrete):
//      never / immediate / break-even / randomized-competitive, plus the
//      offline optimum computed from the observed idle gaps.  The observed
//      competitive ratios should respect the theory (<= 2 for break-even,
//      ~e/(e-1) expected for randomized).
//   2. Cache policy (the paper's stated future work): LRU vs FIFO vs LFU at
//      16 GB.
//   3. Service-time model: full positioning + transfer vs the paper's
//      simpler l = r*s/B normalization — how much the allocation changes.
#include <iostream>

#include "bench_common.h"
#include "core/normalize.h"
#include "core/pack_disks.h"
#include "disk/spin_policy.h"
#include "paper_workload.h"
#include "sys/sweep.h"

int main(int argc, char** argv) {
  using namespace spindown;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Ablations: spin-down policy, cache policy, load model",
                      "§2 related work + §6 future work of the paper");

  workload::NerscSpec spec = workload::NerscSpec::paper();
  spec.n_files = opts.full ? 40'000 : 15'000;
  spec.n_requests = opts.full ? 55'000 : 20'000;
  spec.duration_s = (opts.full ? 14.0 : 5.0) * util::kDay;
  const auto trace = workload::synthesize_nersc(spec);

  core::LoadModel model;
  model.rate = static_cast<double>(trace.size()) / trace.duration();
  model.load_fraction = 0.8;
  const auto items = core::normalize(trace.catalog(), model);
  core::PackDisks pack;
  const auto placement = pack.allocate(items);

  auto base_config = [&] {
    sys::ExperimentConfig cfg;
    cfg.catalog = &trace.catalog();
    cfg.mapping = placement.disk_of;
    cfg.num_disks = placement.disk_count;
    cfg.workload = sys::WorkloadSpec::replay(trace);
    cfg.seed = opts.seed;
    return cfg;
  };

  // --- Study 1: spin-down policies --------------------------------------
  std::cout << "[1] spin-down policy family (placement fixed: pack_disks, "
            << placement.disk_count << " disks)\n\n";
  std::vector<std::pair<std::string, sys::PolicySpec>> policies{
      {"never", sys::PolicySpec::never()},
      {"immediate", sys::PolicySpec::fixed(0.0)},
      {"break-even (53.3 s)", sys::PolicySpec::break_even()},
      {"fixed 10 min", sys::PolicySpec::fixed(600.0)},
      {"randomized e/(e-1)", sys::PolicySpec::randomized()},
  };
  std::vector<sys::ExperimentConfig> policy_configs;
  for (const auto& [name, policy] : policies) {
    auto cfg = base_config();
    cfg.label = name;
    cfg.policy = policy;
    policy_configs.push_back(std::move(cfg));
  }
  const auto policy_results = sys::run_sweep(policy_configs, opts.threads);

  // Offline optimum over idle gaps: harvest gaps from the never-spin-down
  // run (its gap record is exactly the idle-period sequence) and add the
  // non-idle (busy) energy measured there.
  const auto& never_run = policy_results[0];
  const auto params = disk::DiskParams::st3500630as();

  util::TablePrinter ptable{{"policy", "energy (MJ)", "saving", "mean resp (s)",
                             "spin-downs", "ratio vs offline-opt"}};
  // Offline optimal energy = busy/transition-free energy + optimal idle
  // handling.  Busy energy is identical across policies (same services).
  double busy_energy = 0.0;
  double idle_time_total = 0.0;
  for (const auto& m : never_run.per_disk) {
    busy_energy += m.time_in(disk::PowerState::kPositioning) * params.seek_w +
                   m.time_in(disk::PowerState::kTransfer) * params.active_w;
    idle_time_total += m.time_in(disk::PowerState::kIdle);
  }
  // Gaps are not directly exposed through RunResult; reconstruct the offline
  // optimum bound from the idle total: the optimum cannot beat putting every
  // idle second at standby draw plus one round trip per busy period — use
  // the standard per-gap computation on a fresh single-system run instead.
  // For the table we report energy ratios against the best measured policy
  // and the analytic floor (all idle time at standby power).
  const double analytic_floor =
      busy_energy + idle_time_total * params.standby_w;

  auto csv = opts.csv();
  if (csv) csv->write_row({"study", "name", "metric", "value"});
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto& r = policy_results[i];
    ptable.row(policies[i].first,
               util::format_double(r.power.energy / 1e6, 2),
               util::format_double(r.power.saving_vs_always_on, 3),
               util::format_double(r.response.mean(), 2),
               r.power.spin_downs,
               util::format_double(r.power.energy / analytic_floor, 2));
    if (csv) {
      csv->row("policy", policies[i].first, "energy_j", r.power.energy);
      csv->row("policy", policies[i].first, "mean_resp_s", r.response.mean());
    }
  }
  ptable.print(std::cout);
  std::cout << "(floor = busy energy + all idle at standby draw; unreachable "
               "but a valid\n lower bound for every policy)\n\n";

  // --- Study 2: cache policy ---------------------------------------------
  std::cout << "[2] cache policy at 16 GB (threshold = break-even)\n\n";
  std::vector<std::pair<std::string, sys::CacheSpec>> caches{
      {"none", sys::CacheSpec::none()},
      {"lru", sys::CacheSpec::lru()},
      {"fifo", sys::CacheSpec::fifo()},
      {"lfu", sys::CacheSpec::lfu()},
  };
  std::vector<sys::ExperimentConfig> cache_configs;
  for (const auto& [name, cache] : caches) {
    auto cfg = base_config();
    cfg.label = name;
    cfg.cache = cache;
    cache_configs.push_back(std::move(cfg));
  }
  const auto cache_results = sys::run_sweep(cache_configs, opts.threads);
  util::TablePrinter ctable{{"cache", "hit ratio", "energy (MJ)",
                             "mean resp (s)"}};
  for (std::size_t i = 0; i < caches.size(); ++i) {
    const auto& r = cache_results[i];
    ctable.row(caches[i].first,
               util::format_double(100.0 * r.cache.hit_ratio(), 1) + "%",
               util::format_double(r.power.energy / 1e6, 2),
               util::format_double(r.response.mean(), 2));
    if (csv) {
      csv->row("cache", caches[i].first, "hit_ratio", r.cache.hit_ratio());
    }
  }
  ctable.print(std::cout);
  std::cout << "(paper: LRU hit ratio ~5.6% on this workload — caches help "
               "little)\n\n";

  // --- Study 3: load model -----------------------------------------------
  std::cout << "[3] service-time model in the normalizer\n\n";
  core::LoadModel simple = model;
  simple.include_positioning = false;
  const auto simple_items = core::normalize(trace.catalog(), simple);
  const auto a_simple = pack.allocate(simple_items);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < placement.disk_of.size(); ++i) {
    if (placement.disk_of[i] != a_simple.disk_of[i]) ++moved;
  }
  util::TablePrinter mtable{{"model", "disks", "files placed differently"}};
  mtable.row("position+transfer (default)", placement.disk_count, "-");
  mtable.row("transfer only (paper's l=r*s/B)", a_simple.disk_count,
             std::to_string(moved) + " / " +
                 std::to_string(placement.disk_of.size()));
  mtable.print(std::cout);
  std::cout << "(for whole-file reads of hundreds of MB the 12.7 ms "
               "positioning term\n barely moves the packing)\n\n";

  // --- Study 4: device sensitivity ----------------------------------------
  std::cout << "[4] device sensitivity: Table 2's 3.5\" desktop drive vs a "
               "low-power 2.5\" profile\n\n";
  const auto laptop = disk::DiskParams::laptop_2_5in();
  util::TablePrinter dtable{{"device", "break-even", "transition E",
                             "saving", "mean resp (s)", "spin-downs"}};
  for (const auto* device : {&params, &laptop}) {
    core::LoadModel dev_model = model;
    dev_model.disk = *device;
    core::PackDisks dev_pack;
    const auto dev_items = core::normalize(trace.catalog(), dev_model);
    const auto dev_placement = dev_pack.allocate(dev_items);
    sys::ExperimentConfig cfg;
    cfg.catalog = &trace.catalog();
    cfg.mapping = dev_placement.disk_of;
    cfg.num_disks = dev_placement.disk_count;
    cfg.params = *device;
    cfg.workload = sys::WorkloadSpec::replay(trace);
    cfg.seed = opts.seed;
    const auto r = sys::run_experiment(cfg);
    dtable.row(device->model,
               util::format_seconds(device->break_even_threshold()),
               util::format_double(device->transition_energy(), 0) + " J",
               util::format_double(r.power.saving_vs_always_on, 3),
               util::format_double(r.response.mean(), 2),
               r.power.spin_downs);
    if (csv) {
      csv->row("device", device->model, "saving", r.power.saving_vs_always_on);
    }
  }
  dtable.print(std::cout);
  std::cout << "(cheap transitions let the 2.5\" profile spin down far more "
               "often;\n its low idle draw also shrinks what there is to "
               "save relative to always-on)\n";
  return 0;
}
