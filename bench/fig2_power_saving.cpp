// fig2_power_saving.cpp — Figure 2: ratio of power saving vs. arrival rate.
//
// For each load constraint L in {50, 60, 70, 80}% and each Poisson rate R,
// the series is  1 - E(Pack_Disks) / E(random placement)  on the Table 1
// workload (40,000 files, 100 disks, 4000 simulated seconds).  The paper's
// shape: >60% saving below R = 4, declining as R grows, higher L saving
// more at high R.
#include <iostream>

#include "bench_common.h"
#include "paper_workload.h"

int main(int argc, char** argv) {
  using namespace spindown;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Ratio of power saving vs. arrival rate",
                      "Figure 2 of Otoo/Rotem/Tsao, IPPS 2009");

  // Always the full 40,000-file catalog: the farm/load balance of Table 1
  // depends on it (a smaller catalog inflates mean file size and overloads
  // the 100-disk farm at high R).  --full only densifies the sweep grid.
  const std::vector<double> rates =
      opts.full ? std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
                : std::vector<double>{1, 2, 4, 6, 8, 10, 12};
  const std::vector<double> loads{0.5, 0.6, 0.7, 0.8};

  // One random run per rate (L does not affect random placement), plus one
  // packed run per (rate, L); run_scenarios builds the catalog once and the
  // random mapping once across all rates.
  std::vector<sys::ScenarioSpec> scenarios;
  for (const double r : rates) {
    scenarios.push_back(
        bench::random_scenario(r, bench::kPaperFarmDisks, opts.seed));
  }
  for (const double r : rates) {
    for (const double l : loads) {
      scenarios.push_back(
          bench::packed_scenario(r, l, bench::kPaperFarmDisks, opts.seed));
    }
  }
  const auto results = sys::run_scenarios(scenarios, opts.threads);

  util::TablePrinter table{{"R (req/s)", "L=50%", "L=60%", "L=70%", "L=80%",
                            "E_rnd (kJ)"}};
  auto csv = opts.csv();
  if (csv) csv->write_row({"rate", "load_fraction", "power_saving_ratio"});

  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    const auto& rnd = results[ri];
    std::vector<std::string> row{util::format_double(rates[ri], 0)};
    for (std::size_t li = 0; li < loads.size(); ++li) {
      const auto& packed = results[rates.size() + ri * loads.size() + li];
      const double saving =
          rnd.power.energy > 0.0 ? 1.0 - packed.power.energy / rnd.power.energy
                                 : 0.0;
      row.push_back(util::format_double(saving, 3));
      if (csv) csv->row(rates[ri], loads[li], saving);
    }
    row.push_back(util::format_double(rnd.power.energy / 1000.0, 0));
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\n(paper shape: saving > 0.6 for R < 4; declines with R;\n"
               " larger L keeps saving higher at large R)\n";
  return 0;
}
