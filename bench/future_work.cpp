// future_work.cpp — the paper's §6 future-work directions, implemented and
// measured.
//
//   [1] Size-segregated allocation: "restricting the types of files that are
//       allocated to the same disk" — SegregatedPackDisks vs Pack_Disks on a
//       workload where small hot files share disks with 20 GB archives; the
//       win shows up in the response-time tail, the cost in extra disks.
//   [2] MAID baseline (related work [4]): always-on cache disks holding the
//       hottest files vs Pack_Disks' allocation-only approach, same farm.
//   [3] Semi-dynamic reorganization under popularity drift (§1/§6):
//       static placement vs periodic re-packing with migration costs.
#include <iostream>

#include "bench_common.h"
#include "core/maid.h"
#include "core/normalize.h"
#include "core/pack_disks.h"
#include "core/pack_segregated.h"
#include "paper_workload.h"
#include "sys/phased.h"

int main(int argc, char** argv) {
  using namespace spindown;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Future-work features (§6) measured",
                      "size segregation, MAID comparison, reorganization");
  auto csv = opts.csv();
  if (csv) csv->write_row({"study", "config", "metric", "value"});

  // ---- [1] size segregation --------------------------------------------
  {
    std::cout
        << "[1] size-class segregation (Table 1 workload, R=2, L=0.7)\n\n";
    const auto catalog = bench::table1_catalog(opts.seed, 20'000);
    core::LoadModel model;
    model.rate = 2.0;
    model.load_fraction = 0.7;
    const auto items = core::normalize(catalog, model);

    util::TablePrinter table{{"allocator", "disks", "mean resp (s)",
                              "p95 (s)", "p99 (s)", "avg power (W)"}};
    for (const std::size_t k : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, std::size_t{8}}) {
      core::SegregatedPackDisks seg{k};
      const auto a = seg.allocate(items);
      sys::ExperimentConfig cfg;
      cfg.catalog = &catalog;
      cfg.mapping = a.disk_of;
      cfg.num_disks = a.disk_count;
      cfg.workload = sys::WorkloadSpec::poisson(model.rate, 3000.0);
      cfg.seed = opts.seed;
      const auto r = sys::run_experiment(cfg);
      table.row(k == 1 ? "pack_disks (k=1)" : seg.name(), a.disk_count,
                util::format_double(r.response.mean(), 2),
                util::format_double(r.response.p95(), 2),
                util::format_double(r.response.p99(), 2),
                util::format_double(r.power.average_power, 1));
      if (csv) {
        csv->row("segregation", seg.name(), "p99_s", r.response.p99());
        csv->row("segregation", seg.name(), "disks", a.disk_count);
      }
    }
    table.print(std::cout);
    std::cout << "(segregating size classes trims the tail at the cost of "
                 "extra disks)\n\n";
  }

  // ---- [2] MAID comparison ----------------------------------------------
  {
    std::cout << "[2] MAID vs Pack_Disks (same farm, skewed reads)\n\n";
    const auto catalog = bench::table1_catalog(opts.seed + 1, 20'000);
    core::LoadModel model;
    model.rate = 1.0;
    model.load_fraction = 0.7;
    const auto items = core::normalize(catalog, model);
    core::PackDisks pack;
    const auto packed = pack.allocate(items);

    // MAID gets the same total spindle count: a few cache disks plus data
    // disks; Pack_Disks uses its own allocation on that farm.
    const std::uint32_t farm = packed.disk_count + 8;
    const std::uint32_t cache_disks = 4;
    const auto maid = core::build_maid(catalog, cache_disks,
                                       farm - cache_disks,
                                       model.disk.capacity);

    util::TablePrinter table{{"system", "disks", "saving", "mean resp (s)",
                              "p95 (s)", "spin-ups"}};
    using PolicyOverrides =
        std::vector<std::pair<std::uint32_t, sys::PolicySpec>>;
    auto run_mapping = [&](std::vector<std::uint32_t> mapping,
                           std::uint32_t n_disks, PolicyOverrides overrides) {
      sys::ExperimentConfig cfg;
      cfg.catalog = &catalog;
      cfg.mapping = std::move(mapping);
      cfg.num_disks = n_disks;
      cfg.policy_overrides = std::move(overrides);
      cfg.workload = sys::WorkloadSpec::poisson(model.rate, 3000.0);
      cfg.seed = opts.seed;
      return sys::run_experiment(cfg);
    };

    const auto r_pack = run_mapping(packed.disk_of, farm, {});
    std::vector<std::pair<std::uint32_t, sys::PolicySpec>> maid_policies;
    for (std::uint32_t d = 0; d < maid.cache_disks; ++d) {
      maid_policies.emplace_back(d, sys::PolicySpec::never());
    }
    const auto r_maid =
        run_mapping(maid.mapping, maid.total_disks, std::move(maid_policies));

    table.row("pack_disks", packed.disk_count,
              util::format_double(r_pack.power.saving_vs_always_on, 3),
              util::format_double(r_pack.response.mean(), 2),
              util::format_double(r_pack.response.p95(), 2),
              r_pack.power.spin_ups);
    table.row("maid (4 cache disks)", maid.total_disks,
              util::format_double(r_maid.power.saving_vs_always_on, 3),
              util::format_double(r_maid.response.mean(), 2),
              util::format_double(r_maid.response.p95(), 2),
              r_maid.power.spin_ups);
    table.print(std::cout);
    std::cout << "(MAID's cache absorbs "
              << util::format_double(100.0 * maid.cached_popularity, 1)
              << "% of requests; Pack_Disks needs no replicas)\n\n";
    if (csv) {
      csv->row("maid", "pack_disks", "saving",
               r_pack.power.saving_vs_always_on);
      csv->row("maid", "maid", "saving", r_maid.power.saving_vs_always_on);
    }
  }

  // ---- [3] reorganization under drift ------------------------------------
  {
    std::cout << "[3] semi-dynamic reorganization under popularity drift\n\n";
    workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
    spec.n_files = 600;
    util::Rng rng{opts.seed + 2};
    const auto catalog = workload::generate_catalog(spec, rng);

    // Stable-but-tight regime: the initial packing runs every disk near the
    // load cap, so a drifted popularity overloads some disks unless the
    // placement adapts.  (Higher request rates saturate both strategies and
    // show nothing.)
    sys::PhasedConfig cfg;
    cfg.catalog = &catalog;
    cfg.model.rate = 0.5;
    cfg.model.load_fraction = 0.65;
    cfg.windows = opts.full ? 10 : 6;
    cfg.window_s = 4000.0;
    cfg.drift_per_window = 0.1;
    cfg.count_decay = 0.3;
    cfg.seed = opts.seed;

    cfg.reorganize = false;
    const auto fixed = sys::run_phased(cfg);
    cfg.reorganize = true;
    const auto adaptive = sys::run_phased(cfg);

    util::TablePrinter table{{"strategy", "total energy (MJ)",
                              "migrated", "mean resp (s)", "p95 (s)"}};
    table.row("static placement",
              util::format_double(fixed.total_energy / 1e6, 2), "-",
              util::format_double(fixed.response.mean(), 2),
              util::format_double(fixed.response.p95(), 2));
    table.row("reorganize each window",
              util::format_double(adaptive.total_energy / 1e6, 2),
              util::format_bytes(adaptive.migrated_bytes),
              util::format_double(adaptive.response.mean(), 2),
              util::format_double(adaptive.response.p95(), 2));
    table.print(std::cout);
    std::cout << "(drift 10%/window; migration energy "
              << util::format_double(adaptive.migration_energy / 1e6, 2)
              << " MJ is included in the adaptive total)\n";
    if (csv) {
      csv->row("reorg", "static", "mean_resp_s", fixed.response.mean());
      csv->row("reorg", "adaptive", "mean_resp_s", adaptive.response.mean());
    }
  }
  return 0;
}
