// paper_workload.h — the paper's experimental setups as ScenarioSpec values.
//
// Figures 2-4 use the Table 1 synthetic workload: 40,000 files on a 100-disk
// farm, Poisson arrivals at R in [1, 12], simulated for 4000 s.  Figures 5/6
// use the (synthesized) NERSC trace on a 96-disk farm for 720 h.  Every
// setup is a sys::ScenarioSpec — a value with a canonical string — so each
// figure point is reproducible with examples/spindown_run.cpp:
//
//   $ ./spindown_run --scenario "$(this file's spec strings)"
//
// Catalog generation and packing are memoized inside sys::run_scenarios, so
// a figure's whole grid builds each catalog and each distinct mapping once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sys/scenario.h"
#include "workload/catalog.h"
#include "workload/nersc.h"

namespace spindown::bench {

/// Table 1 constants.
inline constexpr std::uint32_t kPaperFarmDisks = 100;
inline constexpr double kPaperSimSeconds = 4000.0;

/// The Table 1 catalog as a value (for analyses that inspect the catalog
/// itself; experiment configs should go through table1-catalog scenarios).
inline workload::FileCatalog table1_catalog(std::uint64_t seed,
                                            std::size_t n_files = 40'000) {
  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = n_files;
  util::Rng rng{seed};
  return workload::generate_catalog(spec, rng);
}

/// Pack_Disks at (R, L) on a farm of at least `farm` disks (grown if the
/// packing needs more).
inline sys::ScenarioSpec packed_scenario(double rate, double load_fraction,
                                         std::uint32_t farm,
                                         std::uint64_t seed,
                                         std::size_t n_files = 40'000) {
  sys::ScenarioSpec s;
  s.catalog = sys::CatalogSpec::table1(n_files, seed);
  s.placement = sys::PlacementSpec::pack();
  s.load_fraction = load_fraction;
  s.disks = farm;
  s.workload = sys::WorkloadSpec::poisson(rate, kPaperSimSeconds);
  s.seed = seed;
  return s;
}

/// Random placement over exactly `farm` disks (the Figures 2-4 baseline).
inline sys::ScenarioSpec random_scenario(double rate, std::uint32_t farm,
                                         std::uint64_t seed,
                                         std::size_t n_files = 40'000) {
  sys::ScenarioSpec s;
  s.catalog = sys::CatalogSpec::table1(n_files, seed);
  s.placement = sys::PlacementSpec::random();
  s.disks = farm;
  s.workload = sys::WorkloadSpec::poisson(rate, kPaperSimSeconds);
  s.seed = seed;
  return s;
}

/// The §5.1 NERSC synthesis, full-size or scaled for quick runs.  Scaling
/// keeps the full 30 days, so the per-disk arrival rate (what spin-down
/// economics depend on) matches the paper's 0.0447/s over 96 disks.
inline workload::NerscSpec nersc_paper_spec(bool full) {
  workload::NerscSpec spec = workload::NerscSpec::paper();
  if (!full) {
    spec.n_files = 20'000;
    spec.n_requests = 26'000;
  }
  return spec;
}

/// The five §5.1 configurations of Figures 5/6.
enum class NerscConfig { kRandom, kPack, kPack4, kRandomLru, kPack4Lru };

inline std::string to_string(NerscConfig c) {
  switch (c) {
    case NerscConfig::kRandom: return "RND";
    case NerscConfig::kPack: return "Pack_Disk";
    case NerscConfig::kPack4: return "Pack_Disk4";
    case NerscConfig::kRandomLru: return "RND+LRU";
    case NerscConfig::kPack4Lru: return "Pack_Disk4+LRU";
  }
  return "?";
}

inline constexpr NerscConfig kAllNerscConfigs[] = {
    NerscConfig::kRandom, NerscConfig::kPack, NerscConfig::kPack4,
    NerscConfig::kRandomLru, NerscConfig::kPack4Lru};

/// One §5.1 point: replay the synthesized trace under a configuration and
/// fixed idleness threshold.  disks stays 0: Pack_Disk(4) uses its own
/// count and random spreads over as many disks as Pack_Disks would (§5.1:
/// "the same number of disks").
inline sys::ScenarioSpec nersc_scenario(const workload::NerscSpec& trace_spec,
                                        NerscConfig config,
                                        double threshold_s,
                                        std::uint64_t seed) {
  sys::ScenarioSpec s;
  s.label = to_string(config);
  s.catalog = sys::CatalogSpec::nersc_synth(trace_spec);
  s.load_fraction = 0.8;
  switch (config) {
    case NerscConfig::kPack:
      s.placement = sys::PlacementSpec::pack();
      break;
    case NerscConfig::kPack4:
    case NerscConfig::kPack4Lru:
      s.placement = sys::PlacementSpec::grouped(4);
      break;
    case NerscConfig::kRandom:
    case NerscConfig::kRandomLru:
      s.placement = sys::PlacementSpec::random();
      break;
  }
  if (config == NerscConfig::kRandomLru || config == NerscConfig::kPack4Lru) {
    s.cache = sys::CacheSpec::lru(util::gb(16.0)); // §5.1's cache
  }
  s.policy = sys::PolicySpec::fixed(threshold_s);
  s.workload = sys::WorkloadSpec::replay_catalog();
  s.seed = seed;
  return s;
}

} // namespace spindown::bench
