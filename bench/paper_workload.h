// paper_workload.h — shared construction of the paper's experimental setups.
//
// Figures 2-4 use the Table 1 synthetic workload: 40,000 files on a 100-disk
// farm, Poisson arrivals at R in [1, 12], simulated for 4000 s.  Figures 5/6
// use the (synthesized) NERSC trace on a 96-disk farm for 720 h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/normalize.h"
#include "core/pack_disks.h"
#include "core/pack_grouped.h"
#include "core/random_alloc.h"
#include "sys/experiment.h"
#include "sys/sweep.h"
#include "workload/catalog.h"
#include "workload/nersc.h"

namespace spindown::bench {

/// Table 1 constants.
inline constexpr std::uint32_t kPaperFarmDisks = 100;
inline constexpr double kPaperSimSeconds = 4000.0;

/// The Table 1 catalog (full 40,000 files unless scaled down).
inline workload::FileCatalog table1_catalog(std::uint64_t seed,
                                            std::size_t n_files = 40'000) {
  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = n_files;
  util::Rng rng{seed};
  return workload::generate_catalog(spec, rng);
}

/// Pack the catalog for (R, L) and return the experiment config on a farm of
/// at least `farm` disks (grown if the packing needs more).
inline sys::ExperimentConfig packed_config(const workload::FileCatalog& cat,
                                           double rate, double load_fraction,
                                           std::uint32_t farm,
                                           std::uint64_t seed) {
  core::LoadModel model;
  model.rate = rate;
  model.load_fraction = load_fraction;
  core::PackDisks pack;
  const auto a = pack.allocate(core::normalize(cat, model));
  sys::ExperimentConfig cfg;
  cfg.label = "pack_disks R=" + util::format_double(rate, 2) +
              " L=" + util::format_double(load_fraction, 2);
  cfg.catalog = &cat;
  cfg.mapping = a.disk_of;
  cfg.num_disks = std::max(farm, a.disk_count);
  cfg.workload = sys::WorkloadSpec::poisson(rate, kPaperSimSeconds);
  cfg.seed = seed;
  return cfg;
}

/// Random placement over exactly `farm` disks.
inline sys::ExperimentConfig random_config(const workload::FileCatalog& cat,
                                           double rate, std::uint32_t farm,
                                           std::uint64_t seed) {
  core::LoadModel model;
  model.rate = rate;
  model.load_fraction = 1.0; // random ignores load; normalize leniently
  core::RandomAllocator rnd{farm, seed};
  const auto a = rnd.allocate(core::normalize(cat, model));
  sys::ExperimentConfig cfg;
  cfg.label = "random R=" + util::format_double(rate, 2);
  cfg.catalog = &cat;
  cfg.mapping = a.disk_of;
  cfg.num_disks = farm;
  cfg.workload = sys::WorkloadSpec::poisson(rate, kPaperSimSeconds);
  cfg.seed = seed;
  return cfg;
}

/// The five §5.1 configurations of Figures 5/6.
enum class NerscConfig { kRandom, kPack, kPack4, kRandomLru, kPack4Lru };

inline std::string to_string(NerscConfig c) {
  switch (c) {
    case NerscConfig::kRandom: return "RND";
    case NerscConfig::kPack: return "Pack_Disk";
    case NerscConfig::kPack4: return "Pack_Disk4";
    case NerscConfig::kRandomLru: return "RND+LRU";
    case NerscConfig::kPack4Lru: return "Pack_Disk4+LRU";
  }
  return "?";
}

inline constexpr NerscConfig kAllNerscConfigs[] = {
    NerscConfig::kRandom, NerscConfig::kPack, NerscConfig::kPack4,
    NerscConfig::kRandomLru, NerscConfig::kPack4Lru};

/// Allocation for a NERSC config; `farm` receives the disk count used.
inline std::vector<std::uint32_t> nersc_mapping(const workload::Trace& trace,
                                                NerscConfig config,
                                                std::uint32_t& farm,
                                                std::uint64_t seed) {
  core::LoadModel model;
  model.rate = std::max(
      1e-6, static_cast<double>(trace.size()) / std::max(1.0, trace.duration()));
  model.load_fraction = 0.8;
  const auto items = core::normalize(trace.catalog(), model);

  switch (config) {
    case NerscConfig::kPack: {
      core::PackDisks pack;
      const auto a = pack.allocate(items);
      farm = a.disk_count;
      return a.disk_of;
    }
    case NerscConfig::kPack4:
    case NerscConfig::kPack4Lru: {
      core::PackDisksGrouped pack{4};
      const auto a = pack.allocate(items);
      farm = a.disk_count;
      return a.disk_of;
    }
    case NerscConfig::kRandom:
    case NerscConfig::kRandomLru: {
      // §5.1: random packs into the same number of disks as Pack_Disks.
      core::PackDisks pack;
      const auto packed = pack.allocate(items);
      farm = packed.disk_count;
      core::RandomAllocator rnd{farm, seed};
      return rnd.allocate(items).disk_of;
    }
  }
  farm = 0;
  return {};
}

inline sys::ExperimentConfig nersc_config(const workload::Trace& trace,
                                          NerscConfig config,
                                          double threshold_s,
                                          std::uint64_t seed) {
  std::uint32_t farm = 0;
  auto mapping = nersc_mapping(trace, config, farm, seed);
  sys::ExperimentConfig cfg;
  cfg.label = to_string(config);
  cfg.catalog = &trace.catalog();
  cfg.mapping = std::move(mapping);
  cfg.num_disks = farm;
  cfg.policy = sys::PolicySpec::fixed(threshold_s);
  if (config == NerscConfig::kRandomLru || config == NerscConfig::kPack4Lru) {
    cfg.cache = sys::CacheSpec::lru(util::gb(16.0)); // §5.1's cache
  }
  cfg.workload = sys::WorkloadSpec::replay(trace);
  cfg.seed = seed;
  return cfg;
}

} // namespace spindown::bench
