// engine_throughput.cpp — events/sec baseline for the DES kernel.
//
// Self-timed (std::chrono) microbench of the pooled event calendar against a
// faithful replica of the seed kernel (std::priority_queue of fat entries +
// std::function callbacks + unordered_set lazy cancellation), measured in
// the same run so the speedup is apples-to-apples on the same machine.
//
// Three profiles, shaped after the simulator's real hot paths:
//   * schedule-heavy — self-rescheduling event chains carrying a 24-byte
//     request payload (the sys/system.cpp arrival pump shape),
//   * cancel-heavy   — arm a 10 s timer, service a request, disarm the
//     timer (the fixed-threshold spin-down policy arms and disarms on every
//     request; this is the profile the ISSUE targets at >= 3x),
//   * replay-shaped  — a farm of disks with arrivals, service completions
//     and idle timers that mostly get disarmed, occasionally fire (the
//     NERSC trace replay shape).
//
// Usage:
//   engine_throughput [--quick] [--json <path>] [--seed <n>] [--reps <n>]
//
// --quick shrinks every profile to a smoke-test size (CI runs this to keep
// the binary from rotting; timing is not asserted).  --json writes the
// machine-readable baseline; BENCH_engine.json at the repo root is the
// committed snapshot regenerated via:
//   ./build/bench/engine_throughput --json BENCH_engine.json
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "des/simulation.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using namespace spindown;

// ---------------------------------------------------------------------------
// Replica of the seed kernel (pre-pooled-calendar), kept verbatim in spirit:
// binary priority_queue of (time, seq, id, std::function) entries and an
// unordered_set of cancelled ids pruned lazily at the head.

namespace legacy {

using SimTime = double;
using Callback = std::function<void()>;

class EventHandle {
public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

private:
  friend class Simulation;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class Simulation {
public:
  SimTime now() const { return now_; }

  EventHandle schedule_at(SimTime t, Callback fn) {
    const std::uint64_t id = next_id_++;
    queue_.push(Entry{t, next_seq_++, id, std::move(fn)});
    return EventHandle{id};
  }

  EventHandle schedule_in(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  bool cancel(EventHandle h) {
    if (!h.valid() || h.id_ >= next_id_) return false;
    return cancelled_.insert(h.id_).second;
  }

  bool step() {
    prune_cancelled();
    if (queue_.empty()) return false;
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = e.time;
    ++executed_;
    e.fn();
    return true;
  }

  void run_until(SimTime t) {
    for (;;) {
      prune_cancelled();
      if (queue_.empty() || queue_.top().time > t) break;
      step();
    }
    if (t > now_) now_ = t;
  }

  void run() {
    while (step()) {
    }
  }

  std::uint64_t executed() const { return executed_; }

private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void prune_cancelled() {
    while (!queue_.empty()) {
      const auto it = cancelled_.find(queue_.top().id);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      queue_.pop();
    }
  }

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
};

} // namespace legacy

template <class Sim>
struct HandleOf;
template <>
struct HandleOf<des::Simulation> {
  using type = des::EventHandle;
};
template <>
struct HandleOf<legacy::Simulation> {
  using type = legacy::EventHandle;
};

/// Mirrors the capture size of the real arrival pump (`this` + a by-value
/// workload::Request): big enough that std::function heap-allocates it,
/// small enough that the pooled calendar stores it inline.
struct Payload {
  std::uint64_t id = 0;
  double arrival = 0.0;
  std::uint64_t bytes = 0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct ProfileResult {
  std::uint64_t events = 0;
  std::uint64_t cancels = 0;
  double wall_s = 0.0;

  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0.0; }
  double cancels_per_sec() const { return wall_s > 0 ? cancels / wall_s : 0.0; }
};

// ---------------------------------------------------------------------------
// Profiles (templated over the kernel).

template <class Sim>
ProfileResult schedule_heavy(std::uint64_t target_events, std::uint64_t seed) {
  Sim sim;
  util::Rng rng{seed};
  std::uint64_t remaining = target_events;

  struct Chain {
    Sim& sim;
    std::uint64_t& remaining;
    util::Rng rng;
    void fire(Payload p) {
      if (remaining == 0) return;
      --remaining;
      ++p.id;
      p.arrival = sim.now();
      sim.schedule_in(rng.uniform(0.001, 2.0),
                      [this, p] { fire(p); });
    }
  };

  constexpr std::uint64_t kChains = 256;
  std::vector<Chain> chains;
  chains.reserve(kChains);
  for (std::uint64_t c = 0; c < kChains; ++c) {
    chains.push_back(Chain{sim, remaining, rng.split()});
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (auto& c : chains) c.fire(Payload{0, 0.0, 4096});
  sim.run();
  ProfileResult r;
  r.wall_s = seconds_since(t0);
  r.events = sim.executed();
  return r;
}

template <class Sim>
ProfileResult cancel_heavy(std::uint64_t cycles, std::uint64_t seed) {
  Sim sim;
  std::uint64_t fired = 0;
  (void)seed; // deterministic profile: the request pattern is fixed

  // The fixed-threshold spin-down discipline, distilled: every request
  // disarms the idle timer armed after the previous service and re-arms it,
  // so the cancel:execute ratio is 1:1.  Entirely event-driven — the whole
  // profile runs inside one sim.run(), like a real replay.
  struct Driver {
    Sim& sim;
    std::uint64_t remaining;
    std::uint64_t& fired;
    std::uint64_t cancels = 0;
    typename HandleOf<Sim>::type timer{};
    bool armed = false;
    Payload p{1, 0.0, 65536};

    void cycle() {
      if (armed && sim.cancel(timer)) {
        armed = false;
        ++cancels;
      }
      if (remaining-- == 0) return;
      timer = sim.schedule_in(10.0, [this] {
        armed = false;
        ++fired;
      });
      armed = true;
      ++p.id;
      sim.schedule_in(0.5, [this, q = p] {
        (void)q;
        cycle();
      });
    }
  };

  Driver d{sim, cycles, fired};
  const auto t0 = std::chrono::steady_clock::now();
  d.cycle();
  sim.run();
  ProfileResult r;
  r.wall_s = seconds_since(t0);
  r.events = sim.executed();
  r.cancels = d.cancels;
  return r;
}

constexpr double kReplayThreshold = 10.0; // idle-timer threshold (seconds)

template <class Sim>
ProfileResult replay_shaped(std::uint64_t target_arrivals, std::uint64_t seed) {
  Sim sim;
  util::Rng farm_rng{seed};
  using Handle = typename HandleOf<Sim>::type;

  struct DiskState {
    Handle timer{};
    bool armed = false;
  };

  struct Farm {
    Sim& sim;
    util::Rng rng;
    std::uint64_t remaining;
    std::uint64_t cancels = 0;
    std::uint64_t timer_fires = 0;
    std::vector<DiskState> disks;

    void arrival(std::uint32_t d, Payload p) {
      if (remaining == 0) return;
      --remaining;
      DiskState& disk = disks[d];
      if (disk.armed) {
        // Same discipline as disk.cpp: disarm the idle timer on arrival.
        sim.cancel(disk.timer);
        disk.armed = false;
        ++cancels;
      }
      sim.schedule_in(0.04 + rng.uniform(0.0, 0.02),
                      [this, d, p] { complete(d, p); });
    }

    void complete(std::uint32_t d, Payload p) {
      DiskState& disk = disks[d];
      disk.timer = sim.schedule_in(kReplayThreshold, [this, d] {
        disks[d].armed = false;
        ++timer_fires;
      });
      disk.armed = true;
      // Mostly short gaps (timer disarmed), occasionally a long one (timer
      // fires) — the NERSC replay's bursty arrival shape.
      const double gap =
          rng.uniform01() < 0.9 ? rng.uniform(0.1, 5.0)
                                : kReplayThreshold + rng.uniform(1.0, 30.0);
      ++p.id;
      sim.schedule_in(gap, [this, d, p] { arrival(d, p); });
    }
  };

  constexpr std::uint32_t kDisks = 64;
  Farm farm{sim, farm_rng.split(), target_arrivals, 0, 0, {}};
  farm.disks.resize(kDisks);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint32_t d = 0; d < kDisks; ++d) {
    const double gap = farm.rng.uniform(0.0, 2.0);
    Payload p{d, 0.0, 131072};
    sim.schedule_in(gap, [&farm, d, p] { farm.arrival(d, p); });
  }
  sim.run();
  ProfileResult r;
  r.wall_s = seconds_since(t0);
  r.events = sim.executed();
  r.cancels = farm.cancels;
  return r;
}

// ---------------------------------------------------------------------------
// Harness.

template <class Sim, class Fn>
ProfileResult best_of(unsigned reps, Fn&& profile) {
  ProfileResult best;
  for (unsigned i = 0; i < reps; ++i) {
    ProfileResult r = profile();
    if (best.wall_s == 0.0 || r.events_per_sec() > best.events_per_sec()) {
      best = r;
    }
  }
  return best;
}

struct Comparison {
  std::string name;
  ProfileResult pooled;
  ProfileResult legacy;

  double speedup() const {
    return legacy.events_per_sec() > 0
               ? pooled.events_per_sec() / legacy.events_per_sec()
               : 0.0;
  }
};

void print(const Comparison& c) {
  std::cout << c.name << ":\n"
            << "  pooled : "
            << static_cast<std::uint64_t>(c.pooled.events_per_sec())
            << " events/s";
  if (c.pooled.cancels > 0) {
    std::cout << ", " << static_cast<std::uint64_t>(c.pooled.cancels_per_sec())
              << " cancels/s";
  }
  std::cout << "  (" << c.pooled.events << " events in " << c.pooled.wall_s
            << " s)\n"
            << "  legacy : "
            << static_cast<std::uint64_t>(c.legacy.events_per_sec())
            << " events/s";
  if (c.legacy.cancels > 0) {
    std::cout << ", " << static_cast<std::uint64_t>(c.legacy.cancels_per_sec())
              << " cancels/s";
  }
  std::cout << "  (" << c.legacy.events << " events in " << c.legacy.wall_s
            << " s)\n"
            << "  speedup: " << c.speedup() << "x\n";
}

void write_json(const std::string& path, const std::vector<Comparison>& all,
                bool quick, std::uint64_t seed) {
  std::ofstream out{path};
  out << "{\n";
  out << "  \"bench\": \"engine_throughput\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"profiles\": {\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Comparison& c = all[i];
    out << "    \"" << c.name << "\": {\n";
    out << "      \"pooled_events_per_sec\": " << c.pooled.events_per_sec()
        << ",\n";
    out << "      \"pooled_cancels_per_sec\": " << c.pooled.cancels_per_sec()
        << ",\n";
    out << "      \"pooled_events\": " << c.pooled.events << ",\n";
    out << "      \"pooled_wall_s\": " << c.pooled.wall_s << ",\n";
    out << "      \"legacy_events_per_sec\": " << c.legacy.events_per_sec()
        << ",\n";
    out << "      \"legacy_cancels_per_sec\": " << c.legacy.cancels_per_sec()
        << ",\n";
    out << "      \"legacy_events\": " << c.legacy.events << ",\n";
    out << "      \"legacy_wall_s\": " << c.legacy.wall_s << ",\n";
    out << "      \"speedup\": " << c.speedup() << "\n";
    out << "    }" << (i + 1 < all.size() ? "," : "") << "\n";
  }
  out << "  }\n";
  out << "}\n";
}

} // namespace

int main(int argc, char** argv) {
  const util::Cli cli{argc, argv};
  if (cli.has("help")) {
    std::cout << "usage: " << cli.program()
              << " [--quick] [--json <path>] [--seed <n>] [--reps <n>]\n"
              << "Measures DES kernel throughput (pooled calendar vs. the\n"
              << "seed kernel replica) on schedule-heavy, cancel-heavy and\n"
              << "NERSC-replay-shaped profiles.\n";
    return 0;
  }
  const bool quick = cli.has("quick");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto reps =
      static_cast<unsigned>(cli.get_int("reps", quick ? 1 : 3));

  const std::uint64_t sched_events = quick ? 20000 : 4000000;
  const std::uint64_t cancel_cycles = quick ? 10000 : 1500000;
  const std::uint64_t replay_arrivals = quick ? 10000 : 1000000;

  std::cout << "== engine_throughput ==\n"
            << "   profiles sized " << (quick ? "--quick" : "full")
            << "; best of " << reps << " rep(s)\n\n";

  std::vector<Comparison> all;

  Comparison sched{"schedule_heavy", {}, {}};
  sched.pooled = best_of<des::Simulation>(reps, [&] {
    return schedule_heavy<des::Simulation>(sched_events, seed);
  });
  sched.legacy = best_of<legacy::Simulation>(reps, [&] {
    return schedule_heavy<legacy::Simulation>(sched_events, seed);
  });
  print(sched);
  all.push_back(sched);

  Comparison cancel{"cancel_heavy", {}, {}};
  cancel.pooled = best_of<des::Simulation>(
      reps, [&] { return cancel_heavy<des::Simulation>(cancel_cycles, seed); });
  cancel.legacy = best_of<legacy::Simulation>(reps, [&] {
    return cancel_heavy<legacy::Simulation>(cancel_cycles, seed);
  });
  print(cancel);
  all.push_back(cancel);

  Comparison replay{"replay_shaped", {}, {}};
  replay.pooled = best_of<des::Simulation>(reps, [&] {
    return replay_shaped<des::Simulation>(replay_arrivals, seed);
  });
  replay.legacy = best_of<legacy::Simulation>(reps, [&] {
    return replay_shaped<legacy::Simulation>(replay_arrivals, seed);
  });
  print(replay);
  all.push_back(replay);

  if (cli.has("json")) {
    const std::string path = cli.get("json", "BENCH_engine.json");
    write_json(path, all, quick, seed);
    std::cout << "\nwrote " << path << "\n";
  }
  return 0;
}
