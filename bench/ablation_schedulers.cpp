// ablation_schedulers.cpp — the scheduler × spin-down-policy grid.
//
// The paper freezes the service discipline at FCFS with a constant seek
// cost, so scheduling never interacts with power management.  This ablation
// opens that axis: every I/O scheduler (io_scheduler.h) crossed with the
// main spin-down policies, on a queue-building workload (many small files at
// a rate high enough that disks hold several pending requests).  Geometry-
// aware disciplines shorten the positioning phases, which drains queues
// faster (less waiting), lengthens idle gaps (more spin-down opportunity),
// and trims seek-power energy — the grid quantifies all three at once.
//
//   $ ./ablation_schedulers [--quick] [--csv grid.csv] [--json grid.json]
//     [--seed 1] [--threads n] [--rate R]
//
// Queue-building setup: files are capped at 16 MB so transfers (<= 222 ms)
// are comparable to the FCFS positioning cost (12.66 ms) — the regime where
// service order matters — and the farm is packed to a 0.9 load fraction, so
// the loaded disks run near saturation and queues form.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/normalize.h"
#include "core/pack_disks.h"
#include "paper_workload.h"
#include "sys/experiment.h"
#include "sys/sweep.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/catalog.h"

namespace {

using namespace spindown;

struct Cell {
  sys::SchedulerSpec scheduler;
  sys::PolicySpec policy;
};

} // namespace

int main(int argc, char** argv) {
  const util::Cli cli{argc, argv};
  if (cli.has("help")) {
    std::cout << "usage: " << cli.program()
              << " [--quick] [--csv <path>] [--json <path>] [--seed <n>]"
                 " [--threads <n>] [--rate <R>]\n"
                 "scheduler x spin-down-policy ablation grid\n";
    return 0;
  }
  const bool quick = cli.has("quick");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));

  // Queue-building catalog: many small files (16 MB cap keeps transfers in
  // the positioning regime), Zipf popularity as in Table 1.
  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = quick ? 800 : 3000;
  spec.max_size = util::mb(16.0);
  util::Rng rng{seed};
  const auto catalog = workload::generate_catalog(spec, rng);

  const double rate = cli.get_double("rate", quick ? 40.0 : 120.0);
  const double horizon = quick ? 400.0 : 2000.0;

  core::LoadModel model;
  model.rate = rate;
  model.load_fraction = 0.9;
  core::PackDisks pack;
  const auto assignment = pack.allocate(core::normalize(catalog, model));
  // The farm keeps the spare disks consolidation freed (the paper's whole
  // economics): spares see no requests, so the spin-down policy decides
  // whether they idle at 9.3 W or park at 0.8 W — the policy axis of the
  // grid — while the loaded disks' queues expose the scheduler axis.
  const std::uint32_t farm =
      assignment.disk_count + (assignment.disk_count + 1) / 2;

  const std::vector<std::pair<std::string, sys::SchedulerSpec>> schedulers{
      {"fcfs", sys::SchedulerSpec::fcfs()},
      {"sstf", sys::SchedulerSpec::sstf()},
      {"scan", sys::SchedulerSpec::scan()},
      {"clook", sys::SchedulerSpec::clook()},
      {"batch", sys::SchedulerSpec::batch()},
  };
  const std::vector<std::pair<std::string, sys::PolicySpec>> policies{
      {"never", sys::PolicySpec::never()},
      {"break-even", sys::PolicySpec::break_even()},
      {"fixed-10s", sys::PolicySpec::fixed(10.0)},
  };

  std::vector<sys::ExperimentConfig> configs;
  for (const auto& [sname, sspec] : schedulers) {
    for (const auto& [pname, pspec] : policies) {
      sys::ExperimentConfig cfg;
      cfg.label = sname + " x " + pname;
      cfg.catalog = &catalog;
      cfg.mapping = assignment.disk_of;
      cfg.num_disks = farm;
      cfg.policy = pspec;
      cfg.scheduler = sspec;
      cfg.workload = sys::WorkloadSpec::poisson(rate, horizon);
      cfg.seed = seed;
      configs.push_back(std::move(cfg));
    }
  }

  spindown::bench::print_header(
      "Scheduler x spin-down policy ablation",
      "beyond the paper: geometry-aware service disciplines");
  std::cout << "catalog: " << catalog.size() << " files, "
            << util::format_bytes(catalog.total_bytes()) << " packed onto "
            << assignment.disk_count << " of " << farm << " disks; R = "
            << util::format_double(rate, 1) << " req/s over "
            << util::format_seconds(horizon) << "\n\n";

  const auto results = sys::run_sweep(configs, threads);

  util::TablePrinter table{{"scheduler", "policy", "mean resp (s)",
                            "p99 resp (s)", "energy (kJ)", "saving",
                            "positionings", "spin-downs"}};
  util::CsvWriter* csv = nullptr;
  std::unique_ptr<util::CsvWriter> csv_holder;
  if (cli.has("csv")) {
    csv_holder = std::make_unique<util::CsvWriter>(
        std::filesystem::path{cli.get("csv", "ablation_schedulers.csv")});
    csv = csv_holder.get();
    csv->write_row({"scheduler", "policy", "mean_resp_s", "p99_resp_s",
                    "energy_j", "saving_vs_always_on", "positionings",
                    "spin_downs", "requests"});
  }
  std::unique_ptr<bench::JsonWriter> json;
  if (cli.has("json")) {
    json = std::make_unique<bench::JsonWriter>(
        std::filesystem::path{cli.get("json", "ablation_schedulers.json")},
        "ablation_schedulers", quick, seed);
    json->meta("rate", rate);
    json->meta("horizon_s", horizon);
    json->meta("farm_disks", static_cast<std::uint64_t>(farm));
  }

  std::size_t i = 0;
  for (const auto& [sname, sspec] : schedulers) {
    for (const auto& [pname, pspec] : policies) {
      const auto& r = results[i++];
      std::uint64_t positionings = 0;
      for (const auto& m : r.per_disk) positionings += m.positionings;
      table.row(sname, pname, util::format_double(r.response.mean(), 3),
                util::format_double(r.response.p99(), 3),
                util::format_double(r.power.energy / 1000.0, 1),
                util::format_double(r.power.saving_vs_always_on, 4),
                positionings, r.power.spin_downs);
      if (csv != nullptr) {
        csv->row(sname, pname, r.response.mean(), r.response.p99(),
                 r.power.energy, r.power.saving_vs_always_on, positionings,
                 r.power.spin_downs, r.requests);
      }
      if (json != nullptr) {
        json->row({{"scheduler", sname},
                   {"policy", pspec.spec()},
                   {"mean_resp_s", r.response.mean()},
                   {"p99_resp_s", r.response.p99()},
                   {"energy_j", r.power.energy},
                   {"saving_vs_always_on", r.power.saving_vs_always_on},
                   {"positionings", positionings},
                   {"spin_downs", r.power.spin_downs},
                   {"requests", r.requests}});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\npositionings < requests on a row means the batching\n"
               "scheduler coalesced adjacent extents into shared seeks;\n"
               "geometry-aware rows pay seek(distance) instead of the\n"
               "constant Table-2 average.\n";
  return 0;
}
