// ablation_orchestration.cpp — fleet power orchestration vs per-disk
// adaptation.
//
// The adaptive ablation (ablation_adaptive.cpp) lets every spindle pick its
// own threshold; this one keeps the per-disk policy fixed and moves the
// coordination *across* disks instead, on the identical catalog, farm, and
// workload grid (stationary / diurnal / bursty, same seed), so rows are
// directly comparable between the two committed baselines.  Mechanisms
// (src/orch/), ablated one at a time and together:
//
//   * redirect        — replicas=2 + replica-aware read redirection: the
//     deterministic lowest-id tie-break concentrates reads on a prefix of
//     the fleet, so the disks holding only cold copies sleep through;
//   * offload         — a 1-disk always-on log tier absorbs writes aimed at
//     sleeping disks and destages them in batches (honest cost: the log
//     disk's own idle draw is included in fleet energy);
//   * redirect+budget — the global SLO sleep budget on top of redirection:
//     the awake-disk quota from the fleet arrival estimate and streaming
//     p99 (Liu et al.'s closed form) decides *how many* disks the
//     redirection prefix may use.  The budget only expresses itself through
//     routing, so it rides on redirect;
//   * all             — all three mechanisms from one scenario string.
//
// The per-disk reference rows are the adaptive ablation's policy set run
// orchestration-off.  Acceptance (the tentpole's headline): on the diurnal
// scenario some coordinated row must *strictly dominate* the per-disk set —
// lower energy than the best per-disk energy AND lower mean response than
// the best per-disk mean — and the coordinated run must be bit-identical
// across shard counts.
//
//   $ ./ablation_orchestration [--quick] [--csv g.csv]
//     [--json BENCH_orchestration.json] [--seed 1] [--threads n] [--slo 12]
//
// The committed BENCH_orchestration.json baseline is the full run;
// regenerate with:  ./ablation_orchestration --json BENCH_orchestration.json
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/normalize.h"
#include "core/pack_disks.h"
#include "sys/experiment.h"
#include "sys/sweep.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/catalog.h"

namespace {

using namespace spindown;

struct OrchRow {
  std::string label;
  std::string orch;           ///< OrchSpec string, "off" for per-disk rows
  sys::PolicySpec policy;
  std::uint32_t replicas = 1;
  bool coordinated = false;
};

double total_energy(const sys::RunResult& r) { return r.power.energy; }

} // namespace

int main(int argc, char** argv) {
  const util::Cli cli{argc, argv};
  if (cli.has("help")) {
    std::cout << "usage: " << cli.program()
              << " [--quick] [--csv <path>] [--json <path>] [--seed <n>]"
                 " [--threads <n>] [--slo <s>]\n"
                 "fleet orchestration (redirect/offload/budget) x workload "
                 "grid\n";
    return 0;
  }
  const bool quick = cli.has("quick");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));
  const double slo = cli.get_double("slo", 12.0);

  // Identical farm construction to ablation_adaptive.cpp (same seed, same
  // catalog, same packing) so per-disk rows here reproduce that baseline's
  // numbers bit for bit.
  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = quick ? 500 : 1500;
  spec.max_size = util::mb(32.0);
  util::Rng rng{seed};
  const auto catalog = workload::generate_catalog(spec, rng);

  const double busy_rate = quick ? 1.5 : 3.0;
  core::LoadModel model;
  model.rate = busy_rate;
  model.load_fraction = 0.025;
  core::PackDisks pack;
  const auto assignment = pack.allocate(core::normalize(catalog, model));
  const std::uint32_t farm = assignment.disk_count;

  const disk::DiskParams params = disk::DiskParams::st3500630as();
  const double B = params.break_even_threshold();

  const double shoulder_rate = static_cast<double>(farm) / 65.0;
  const double night_rate = static_cast<double>(farm) / (quick ? 250.0 : 350.0);
  const double lull_rate = static_cast<double>(farm) / (quick ? 500.0 : 450.0);

  const double phase_s = quick ? 1500.0 : 3000.0;
  const double period = 3.0 * phase_s;
  const double horizon = (quick ? 2.0 : 3.0) * period;

  const std::vector<workload::RateSegment> diurnal{
      {0.0, busy_rate}, {phase_s, shoulder_rate}, {2.0 * phase_s, night_rate}};
  workload::MmppParams burst;
  burst.rate = {shoulder_rate, lull_rate};
  burst.mean_dwell = {phase_s / 2.0, phase_s};

  struct Scenario {
    std::string name;
    sys::WorkloadSpec workload;
  };
  const std::vector<Scenario> scenarios{
      {"stationary", sys::WorkloadSpec::poisson(busy_rate, horizon)},
      {"diurnal", sys::WorkloadSpec::nhpp(diurnal, horizon, period)},
      {"bursty", sys::WorkloadSpec::mmpp(burst, horizon)},
  };

  const std::string budget_key = "budget:p99:" + util::format_roundtrip(slo);
  const std::vector<OrchRow> rows{
      // Per-disk reference set: the adaptive ablation's policies, orch off.
      {"break-even", "off", sys::PolicySpec::break_even(), 1, false},
      {"ewma", "off", sys::PolicySpec::ewma(), 1, false},
      {"share", "off", sys::PolicySpec::share(), 1, false},
      {"slack", "off", sys::PolicySpec::slack(slo), 1, false},
      // Coordinated set: per-disk policy pinned to break-even so every
      // delta below is attributable to the fleet-level mechanism.
      {"redirect", "redirect", sys::PolicySpec::break_even(), 2, true},
      {"offload", "offload:1", sys::PolicySpec::break_even(), 1, true},
      {"redirect+budget", "redirect+" + budget_key,
       sys::PolicySpec::break_even(), 2, true},
      {"all", "redirect+offload:1+" + budget_key,
       sys::PolicySpec::break_even(), 2, true},
      // Coordination composes with per-disk adaptation: the same fleet
      // mechanisms over the adaptive ewma policy instead of break-even.
      {"redirect+budget x ewma", "redirect+" + budget_key,
       sys::PolicySpec::ewma(), 2, true},
      {"all x ewma", "redirect+offload:1+" + budget_key,
       sys::PolicySpec::ewma(), 2, true},
  };

  auto config_for = [&](const Scenario& s, const OrchRow& row) {
    sys::ExperimentConfig cfg;
    cfg.label = s.name + " x " + row.label;
    cfg.catalog = &catalog;
    cfg.mapping = assignment.disk_of;
    cfg.policy = row.policy;
    cfg.workload = s.workload;
    cfg.seed = seed;
    cfg.orch = sys::OrchSpec::parse(row.orch);
    cfg.replicas = row.replicas;
    cfg.dynamic_routing = row.replicas > 1;
    cfg.num_disks = farm + (cfg.orch.offload ? cfg.orch.log_disks : 0);
    return cfg;
  };

  std::vector<sys::ExperimentConfig> configs;
  for (const auto& s : scenarios) {
    for (const auto& row : rows) configs.push_back(config_for(s, row));
  }
  // Shard-identity probe: the all-mechanisms diurnal run again at 4 shards
  // (configs[...] above all run at shards = 1).
  auto sharded = config_for(scenarios[1], rows.back());
  sharded.shards = 4;
  configs.push_back(sharded);

  bench::print_header("Fleet orchestration x non-stationary workloads",
                      "coordinated spin state: redirect / offload / budget");
  std::cout << "catalog: " << catalog.size() << " files, "
            << util::format_bytes(catalog.total_bytes()) << " on " << farm
            << " data disks (break-even " << util::format_seconds(B)
            << "); horizon " << util::format_seconds(horizon)
            << ", budget SLO p99 < " << util::format_seconds(slo) << "\n\n";

  const auto all_results = sys::run_sweep(configs, threads);

  util::CsvWriter* csv = nullptr;
  std::unique_ptr<util::CsvWriter> csv_holder;
  if (cli.has("csv")) {
    csv_holder = std::make_unique<util::CsvWriter>(
        std::filesystem::path{cli.get("csv", "ablation_orchestration.csv")});
    csv = csv_holder.get();
    csv->write_row({"scenario", "orch", "policy", "replicas", "workload",
                    "energy_j", "saving_vs_always_on", "mean_resp_s",
                    "p95_resp_s", "p99_resp_s", "spin_downs", "spin_ups",
                    "requests"});
  }
  std::unique_ptr<bench::JsonWriter> json;
  if (cli.has("json")) {
    json = std::make_unique<bench::JsonWriter>(
        std::filesystem::path{cli.get("json", "BENCH_orchestration.json")},
        "ablation_orchestration", quick, seed);
    json->meta("farm_disks", static_cast<std::uint64_t>(farm));
    json->meta("break_even_s", B);
    json->meta("slo_p99_s", slo);
    json->meta("horizon_s", horizon);
  }

  bool diurnal_dominates = false;
  std::string diurnal_dominator;
  std::size_t idx = 0;
  for (const auto& s : scenarios) {
    std::vector<sys::RunResult> results;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      results.push_back(all_results[idx++]);
    }

    std::cout << "--- " << s.name << "  [" << s.workload.spec() << "]\n";
    util::TablePrinter table{{"row", "orch", "energy (kJ)", "saving",
                              "mean resp (s)", "p95 (s)", "p99 (s)",
                              "spin-ups"}};
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = results[i];
      table.row(rows[i].label, rows[i].orch,
                util::format_double(r.power.energy / 1000.0, 1),
                util::format_double(r.power.saving_vs_always_on, 4),
                util::format_double(r.response.mean(), 3),
                util::format_double(r.response.p95(), 3),
                util::format_double(r.response.p99(), 3), r.power.spin_ups);
      if (csv != nullptr) {
        csv->row(s.name, rows[i].orch, rows[i].policy.spec(),
                 rows[i].replicas, s.workload.spec(), r.power.energy,
                 r.power.saving_vs_always_on, r.response.mean(),
                 r.response.p95(), r.response.p99(), r.power.spin_downs,
                 r.power.spin_ups, r.requests);
      }
      if (json != nullptr) {
        json->row({{"scenario", s.name},
                   {"row", rows[i].label},
                   {"orch", rows[i].orch},
                   {"policy", rows[i].policy.spec()},
                   {"replicas", static_cast<std::uint64_t>(rows[i].replicas)},
                   {"coordinated", rows[i].coordinated},
                   {"workload", s.workload.spec()},
                   {"energy_j", r.power.energy},
                   {"saving_vs_always_on", r.power.saving_vs_always_on},
                   {"mean_resp_s", r.response.mean()},
                   {"p95_resp_s", r.response.p95()},
                   {"p99_resp_s", r.response.p99()},
                   {"spin_downs", r.power.spin_downs},
                   {"spin_ups", r.power.spin_ups},
                   {"requests", r.requests}});
      }
    }
    table.print(std::cout);

    // Strict domination vs the per-disk set's *per-axis minima*: the
    // coordinated row must beat the best per-disk energy AND the best
    // per-disk mean response at the same time.
    double best_energy = 0.0, best_mean = 0.0;
    bool first = true;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].coordinated) continue;
      const auto& r = results[i];
      if (first || total_energy(r) < best_energy) {
        best_energy = total_energy(r);
      }
      if (first || r.response.mean() < best_mean) {
        best_mean = r.response.mean();
      }
      first = false;
    }
    std::string dominator;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (!rows[i].coordinated) continue;
      const auto& r = results[i];
      if (total_energy(r) < best_energy && r.response.mean() < best_mean) {
        if (!dominator.empty()) dominator += ", ";
        dominator += rows[i].label;
      }
    }
    std::cout << "  per-disk best: "
              << util::format_double(best_energy / 1000.0, 1) << " kJ / "
              << util::format_double(best_mean, 3)
              << " s; strictly dominated by: "
              << (dominator.empty() ? std::string{"(none)"} : dominator)
              << "\n\n";
    if (s.name == "diurnal") {
      diurnal_dominates = !dominator.empty();
      diurnal_dominator = dominator;
    }
  }

  // Shard identity: the all-mechanisms diurnal run at 4 shards must be bit
  // identical to its 1-shard row above.
  const auto& one_shard = all_results[rows.size() + rows.size() - 1];
  const auto& four_shards = all_results[scenarios.size() * rows.size()];
  const bool shard_identity =
      total_energy(one_shard) == total_energy(four_shards) &&
      one_shard.response.mean() == four_shards.response.mean() &&
      one_shard.requests == four_shards.requests;
  std::cout << "shard identity (diurnal, all mechanisms, 1 vs 4 shards): "
            << (shard_identity ? "bit-identical" : "MISMATCH") << "\n";
  std::cout << "acceptance: diurnal coordinated row strictly dominates the "
               "per-disk set: "
            << (diurnal_dominates ? "yes (" + diurnal_dominator + ")" : "NO")
            << "\n";
  if (json != nullptr) {
    json->meta("diurnal_coordinated_dominates", diurnal_dominates);
    json->meta("shard_identity", shard_identity);
    json->finish();
  }
  return diurnal_dominates && shard_identity ? 0 : 1;
}
