// fig5_threshold_power.cpp — Figure 5: power saving vs. idleness threshold.
//
// Replays the (synthesized) 30-day NERSC trace against the five §5.1
// configurations — RND, Pack_Disk, Pack_Disk4, RND+LRU, Pack_Disk4+LRU —
// sweeping the fixed idleness threshold from ~0 to 2 hours.  Power saving
// is normalized against spinning all N disks with no power management (the
// paper's normalization).  Paper shape: Pack_Disk(4) saves ~85% almost flat
// across thresholds; RND varies strongly (high saving only at aggressive
// thresholds); the 16 GB LRU barely helps (~5.6% hit ratio).
#include <iostream>

#include "bench_common.h"
#include "paper_workload.h"

int main(int argc, char** argv) {
  using namespace spindown;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Power saving vs. idleness threshold (NERSC trace)",
                      "Figure 5 of Otoo/Rotem/Tsao, IPPS 2009");

  const auto spec = bench::nersc_paper_spec(opts.full);
  std::cout << "synthesizing NERSC-like trace (" << spec.n_requests
            << " requests / " << spec.n_files << " files)...\n\n";

  const std::vector<double> thresholds_h =
      opts.full ? std::vector<double>{0.01, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0}
                : std::vector<double>{0.01, 0.25, 0.5, 1.0, 2.0};

  // run_scenarios synthesizes the trace once and builds each of the three
  // distinct mappings once across the whole threshold grid.
  std::vector<sys::ScenarioSpec> scenarios;
  for (const double th : thresholds_h) {
    for (const auto c : bench::kAllNerscConfigs) {
      scenarios.push_back(
          bench::nersc_scenario(spec, c, th * util::kHour, opts.seed));
    }
  }
  const auto results = sys::run_scenarios(scenarios, opts.threads);

  util::TablePrinter table{{"threshold (h)", "RND", "Pack_Disk", "Pack_Disk4",
                            "RND+LRU", "Pack_Disk4+LRU"}};
  auto csv = opts.csv();
  if (csv) csv->write_row({"threshold_h", "config", "power_saving"});
  auto json = opts.json("fig5_threshold_power", !opts.full);

  const std::size_t n_cfg = std::size(bench::kAllNerscConfigs);
  for (std::size_t ti = 0; ti < thresholds_h.size(); ++ti) {
    std::vector<std::string> row{util::format_double(thresholds_h[ti], 2)};
    for (std::size_t ci = 0; ci < n_cfg; ++ci) {
      const auto& r = results[ti * n_cfg + ci];
      row.push_back(util::format_double(r.power.saving_vs_always_on, 3));
      if (csv) {
        csv->row(thresholds_h[ti],
                 bench::to_string(bench::kAllNerscConfigs[ci]),
                 r.power.saving_vs_always_on);
      }
      if (json) {
        json->row({{"threshold_h", thresholds_h[ti]},
                   {"config", bench::to_string(bench::kAllNerscConfigs[ci])},
                   {"power_saving", r.power.saving_vs_always_on},
                   {"energy_j", r.power.energy},
                   {"mean_resp_s", r.response.mean()}});
      }
    }
    table.add_row(row);
  }
  table.print(std::cout);

  // The §5.1 cache observation.
  const auto& lru_run = results[n_cfg - 1]; // any +LRU run: same cache size
  std::cout << "\nLRU cache hit ratio: "
            << util::format_double(100.0 * lru_run.cache.hit_ratio(), 1)
            << "% (paper: 5.6%)\n";
  std::cout << "(paper shape: Pack_Disk(4) ~0.85 and nearly flat; RND varies "
               "30-90%,\n falling as the threshold grows; LRU adds little)\n";
  return 0;
}
