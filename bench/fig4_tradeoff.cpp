// fig4_tradeoff.cpp — Figure 4: power cost and response time vs. L at R = 6.
//
// Sweeping the load constraint L from 0.4 to 0.9 with the arrival rate fixed
// at 6/s: larger L packs files onto fewer disks, cutting power, at the cost
// of longer queues on each active disk.  The paper plots average power (W,
// left axis, roughly 1000 -> 200 W) against mean response time (s, right
// axis, rising toward ~20 s).
#include <iostream>

#include "bench_common.h"
#include "paper_workload.h"

int main(int argc, char** argv) {
  using namespace spindown;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Power vs. response time across load constraints (R=6)",
                      "Figure 4 of Otoo/Rotem/Tsao, IPPS 2009");

  // Always the full 40,000-file catalog: the farm/load balance of Table 1
  // depends on it (a smaller catalog inflates mean file size and overloads
  // the 100-disk farm at high R).  --full only densifies the sweep grid.
  const double rate = 6.0;
  std::vector<double> loads;
  for (double l = 0.40; l <= 0.901; l += opts.full ? 0.05 : 0.10) {
    loads.push_back(l);
  }

  std::vector<sys::ScenarioSpec> scenarios;
  scenarios.reserve(loads.size());
  for (const double l : loads) {
    scenarios.push_back(
        bench::packed_scenario(rate, l, bench::kPaperFarmDisks, opts.seed));
  }
  const auto results = sys::run_scenarios(scenarios, opts.threads);

  util::TablePrinter table{{"L", "disks used", "avg power (W)",
                            "mean resp (s)", "p95 resp (s)"}};
  auto csv = opts.csv();
  if (csv) {
    csv->write_row(
        {"load_fraction", "disks", "avg_power_w", "mean_resp_s", "p95_resp_s"});
  }
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const auto& r = results[i];
    // Disks actually holding data = those that served or stored something;
    // the packing's disk count is what the config allocated.
    std::uint32_t used = 0;
    for (const auto& m : r.per_disk) {
      if (m.served > 0 || m.bytes_served > 0) ++used;
    }
    table.row(util::format_double(loads[i], 2), used,
              util::format_double(r.power.average_power, 1),
              util::format_double(r.response.mean(), 2),
              util::format_double(r.response.p95(), 2));
    if (csv) {
      csv->row(loads[i], used, r.power.average_power, r.response.mean(),
               r.response.p95());
    }
  }
  table.print(std::cout);
  std::cout << "\n(paper shape: power falls and response time rises as L "
               "grows)\n";
  return 0;
}
