# StaticAnalysis.cmake — lint/format targets for the determinism firewall.
#
# Targets (all no-op gracefully when a tool is missing, except the
# determinism linter, which only needs Python 3):
#
#   lint              everything below that is available
#   lint-determinism  tools/lint/determinism_lint.py over src/ (+ spec
#                     round-trip coverage); zero findings required
#   lint-tidy         run-clang-tidy over src/bench/examples/tests with the
#                     repo .clang-tidy (WarningsAsErrors: '*')
#   format-check      mechanical floor (tools/lint/format_check.py) plus
#                     clang-format --dry-run --Werror when available
#   format            clang-format -i over the tree (requires clang-format)
#
# compile_commands.json is exported from the root CMakeLists so lint-tidy
# and editor tooling always have an up-to-date database.

find_package(Python3 COMPONENTS Interpreter QUIET)

set(_lint_depends "")

if(Python3_FOUND)
  add_custom_target(lint-determinism
    COMMAND ${Python3_EXECUTABLE}
            ${PROJECT_SOURCE_DIR}/tools/lint/determinism_lint.py
            --root ${PROJECT_SOURCE_DIR}
    COMMENT "Determinism linter (tools/lint/determinism_lint.py)"
    VERBATIM)
  list(APPEND _lint_depends lint-determinism)

  add_custom_target(format-mechanical
    COMMAND ${Python3_EXECUTABLE}
            ${PROJECT_SOURCE_DIR}/tools/lint/format_check.py
            --root ${PROJECT_SOURCE_DIR}
    COMMENT "Mechanical format floor (tools/lint/format_check.py)"
    VERBATIM)
else()
  message(WARNING
    "Python3 not found: lint-determinism/format-mechanical targets disabled")
endif()

# --- clang-tidy -------------------------------------------------------------

find_program(SPINDOWN_CLANG_TIDY
  NAMES clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 clang-tidy-17)
find_program(SPINDOWN_RUN_CLANG_TIDY
  NAMES run-clang-tidy run-clang-tidy-20 run-clang-tidy-19 run-clang-tidy-18
        run-clang-tidy-17)

if(SPINDOWN_CLANG_TIDY AND SPINDOWN_RUN_CLANG_TIDY)
  add_custom_target(lint-tidy
    COMMAND ${SPINDOWN_RUN_CLANG_TIDY}
            -clang-tidy-binary ${SPINDOWN_CLANG_TIDY}
            -p ${CMAKE_BINARY_DIR}
            -quiet
            "${PROJECT_SOURCE_DIR}/(src|bench|examples|tests)/"
    WORKING_DIRECTORY ${PROJECT_SOURCE_DIR}
    COMMENT "clang-tidy baseline (run-clang-tidy, zero findings required)"
    VERBATIM)
  list(APPEND _lint_depends lint-tidy)
else()
  message(STATUS
    "clang-tidy/run-clang-tidy not found: `lint` runs the determinism "
    "linter only (CI runs the full baseline)")
endif()

# --- clang-format -----------------------------------------------------------

file(GLOB_RECURSE SPINDOWN_FORMAT_SOURCES CONFIGURE_DEPENDS
  ${PROJECT_SOURCE_DIR}/src/*.h ${PROJECT_SOURCE_DIR}/src/*.cpp
  ${PROJECT_SOURCE_DIR}/bench/*.h ${PROJECT_SOURCE_DIR}/bench/*.cpp
  ${PROJECT_SOURCE_DIR}/examples/*.h ${PROJECT_SOURCE_DIR}/examples/*.cpp
  ${PROJECT_SOURCE_DIR}/tests/*.h ${PROJECT_SOURCE_DIR}/tests/*.cpp)

find_program(SPINDOWN_CLANG_FORMAT
  NAMES clang-format clang-format-20 clang-format-19 clang-format-18
        clang-format-17)

if(SPINDOWN_CLANG_FORMAT)
  add_custom_target(format
    COMMAND ${SPINDOWN_CLANG_FORMAT} -i ${SPINDOWN_FORMAT_SOURCES}
    COMMENT "clang-format -i over src/bench/examples/tests"
    VERBATIM)
  add_custom_target(format-check
    COMMAND ${SPINDOWN_CLANG_FORMAT} --dry-run --Werror
            ${SPINDOWN_FORMAT_SOURCES}
    COMMENT "clang-format --dry-run --Werror (no diffs allowed)"
    VERBATIM)
  if(TARGET format-mechanical)
    add_dependencies(format-check format-mechanical)
  endif()
elseif(TARGET format-mechanical)
  message(STATUS
    "clang-format not found: format-check runs the mechanical floor only")
  add_custom_target(format-check DEPENDS format-mechanical)
endif()

if(_lint_depends)
  add_custom_target(lint DEPENDS ${_lint_depends})
endif()
